package vliw

import (
	"fmt"
	"io"
	"strings"
	"time"

	"symbol/internal/exec"
	"symbol/internal/fault"
	"symbol/internal/ic"
	"symbol/internal/mterm"
	"symbol/internal/obs"
	"symbol/internal/word"
)

// SimResult is the outcome of a simulated run of compacted code.
type SimResult struct {
	Status int    // 0 success, 1 fail
	Output string // write/1 and nl/0 text (must match the sequential run)
	Cycles int64  // machine cycles: one per word plus taken-branch bubbles
	Words  int64  // words issued
	Ops    int64  // operations executed
	Bubble int64  // cycles lost to taken branches
	// Stats is the per-run observability record. Steps counts executed
	// operations (the VLIW analogue of ICIs — compaction may duplicate or
	// speculate ops, so it can differ from the sequential Steps) and Cycles
	// mirrors the cycle count.
	Stats obs.Stats
}

// SimOptions configure simulation.
type SimOptions struct {
	MaxCycles int64 // abort bound (default 6e9)
	// Layout shrinks the usable size of the memory areas below the
	// compile-time defaults, mirroring emu.Options.Layout.
	Layout ic.Layout
	// Deadline, when non-zero, aborts the run with fault.ErrDeadline once
	// the wall clock passes it (checked every fault.CheckInterval cycles,
	// the same cadence as the sequential emulator).
	Deadline time.Time
	// Interrupt, when non-nil, aborts the run with fault.ErrCanceled once
	// it is closed (polled at the deadline cadence), mirroring emu.Options.
	Interrupt <-chan struct{}
	// State, when non-nil, is the caller-provided machine state (memory
	// image, register file, ready cycles) to run in; it must be all zero.
	// Mirrors emu.Options.State.
	State *ic.State
	// Trace, if non-nil, receives one line per executed word (debug aid).
	Trace io.Writer
	// Events, if non-nil, receives executor milestone events. Unlike the
	// sequential emulator the simulator has no separate reference loop, so
	// the hooks run inline under a nil check; compaction can speculate or
	// duplicate operations, so the VLIW event stream is approximate where
	// the sequential one is exact.
	Events *obs.Trace
}

// SimError is a simulation failure with cycle context. Err, when non-nil,
// is the underlying typed fault sentinel.
type SimError struct {
	WordIdx int
	Cycle   int64
	Reason  string
	Err     error
}

func (e *SimError) Error() string {
	return fmt.Sprintf("vliw: word %d cycle %d: %s", e.WordIdx, e.Cycle, e.Reason)
}

// Unwrap exposes the typed fault underneath the machine context.
func (e *SimError) Unwrap() error { return e.Err }

// ErrCycleLimit is reported (wrapped in *SimError) when MaxCycles is
// exhausted.
var ErrCycleLimit = fault.ErrCycleLimit

// overflowKind maps an overflowed memory region to its fault kind.
func overflowKind(r ic.Region) fault.Kind {
	switch r {
	case ic.RegionHeap:
		return fault.HeapOverflow
	case ic.RegionEnv:
		return fault.EnvOverflow
	case ic.RegionCP:
		return fault.CPOverflow
	case ic.RegionTrail:
		return fault.TrailOverflow
	case ic.RegionPDL:
		return fault.PDLOverflow
	}
	return fault.InvalidMemory
}

type pendingWrite struct {
	reg ic.Reg
	val word.W
	lat int
}

// Sim executes the compacted program cycle by cycle. All operations of a
// word read the register state the word was issued with; results become
// visible after the producer latency (1 cycle for ALU and moves, the
// configured memory latency for loads). The simulator verifies the static
// schedule at run time: reading a register whose producer is still in
// flight is an error, as a real VLIW has no interlocks.
//
// The per-op execute step dispatches on the predecoded operation slots
// (Program.XWords): the same dense opcodes as the sequential emulator's
// predecoded loops, with imm-vs-reg variants and sys escapes resolved at
// decode time instead of per issue.
func Sim(p *Program, opts SimOptions) (*SimResult, error) {
	if opts.MaxCycles == 0 {
		opts.MaxCycles = 6e9
	}
	st := opts.State
	if st == nil {
		st = ic.NewState()
	}
	nregs := int(p.MaxReg()) + 1
	regs := st.Regs(nregs)
	ready := st.Ready(nregs)
	mem := st.Mem()
	xwords := p.XWords()
	var out strings.Builder

	res := &SimResult{}
	start := time.Now()
	events := opts.Events
	// Per-opcode dispatch counts, expanded into the class mix at halt; the
	// VLIW streams carry only plain (unfused) opcodes, so no fixups apply.
	var disp [256]int64
	var faultsRaised, faultsCaught int64
	var cycle int64
	pcW := p.Entry
	var writes []pendingWrite

	fail := func(w int, format string, args ...interface{}) *SimError {
		return &SimError{WordIdx: w, Cycle: cycle, Reason: fmt.Sprintf(format, args...)}
	}
	faultErr := func(w int, k fault.Kind) error {
		e := fail(w, "%s", k.String())
		e.Err = fault.Of(k)
		return e
	}

	// Region bounds under the configured layout; see emu for why the
	// one-sided check (addr past the annotated region's configured end)
	// is sound for this runtime's store sites. RegionUnknown gets an
	// unreachable limit so unannotated stores need no separate test.
	var limit [ic.RegionBall + 1]uint64
	limit[ic.RegionUnknown] = ^uint64(0)
	for r := ic.RegionHeap; r <= ic.RegionBall; r++ {
		limit[r] = opts.Layout.Limit(r)
	}
	var pendingFault fault.Kind
	throwWord := -1
	if p.IC.ThrowPC > 0 {
		if tw, ok := p.WordOf[p.IC.ThrowPC]; ok {
			throwWord = tw
		}
	}
	failWord := -1
	if fw, ok := p.WordOf[p.IC.FailPC]; ok {
		failWord = fw
	}
	// raise converts a catchable fault into a ball delivered to the unwind
	// routine; other kinds (or programs without the routine) abort.
	raise := func(w int, pc int32, k fault.Kind) error {
		faultsRaised++
		if events != nil {
			events.Add(obs.Event{Step: res.Ops, PC: pc, Kind: obs.EvFault, Arg: int64(k)})
		}
		if fault.Catchable(k) && throwWord >= 0 &&
			mterm.BallFault(mem, p.IC.Atoms, fault.BallName(k)) {
			st.TouchRange(ic.BallBase, ic.BallBase+ic.BallSize)
			pendingFault = k
			faultsCaught++
			return nil
		}
		return faultErr(w, k)
	}

	read := func(wi int, r ic.Reg) (word.W, error) {
		if ready[r] > cycle {
			return 0, fail(wi, "latency violation: register %d ready at %d", r, ready[r])
		}
		return regs[r], nil
	}

	for {
		if cycle >= opts.MaxCycles {
			return nil, faultErr(pcW, fault.CycleLimit)
		}
		if cycle&(fault.CheckInterval-1) == 0 {
			if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
				return nil, faultErr(pcW, fault.Deadline)
			}
			if opts.Interrupt != nil {
				select {
				case <-opts.Interrupt:
					return nil, faultErr(pcW, fault.Canceled)
				default:
				}
			}
		}
		if pcW < 0 || pcW >= len(p.Words) {
			return nil, fail(pcW, "word index out of range")
		}
		if opts.Trace != nil {
			fmt.Fprintf(opts.Trace, "%6d w%-5d", cycle, pcW)
			for _, op := range p.Words[pcW] {
				fmt.Fprintf(opts.Trace, " [%s]", op.Inst.String())
			}
			fmt.Fprintf(opts.Trace, "  b=%x tr=%x h=%x e=%x\n",
				regs[ic.RegB].Val(), regs[ic.RegTR].Val(), regs[ic.RegH].Val(), regs[ic.RegE].Val())
		}
		res.Words++
		writes = writes[:0]
		nextW := pcW + 1
		branched := false
		halted := false
		status := 0
		xw := xwords[pcW]

	ops:
		for oi := range xw {
			op := &xw[oi]
			res.Ops++
			disp[op.Code]++
			switch op.Code {
			case exec.XNop:
			case exec.XLd, exec.XLdUndo:
				base, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				addr := base.Val() + uint64(op.Imm)
				var v word.W
				if addr < uint64(len(mem)) {
					v = mem[addr]
				}
				// Out-of-range speculative loads are dismissed (return 0),
				// as on machines with non-faulting loads.
				writes = append(writes, pendingWrite{op.D, v, p.Config.MemLatency})
			case exec.XSt:
				base, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				v, err := read(pcW, op.B)
				if err != nil {
					return nil, err
				}
				addr := base.Val() + uint64(op.Imm)
				if addr >= limit[op.Region] {
					if err := raise(pcW, op.PC, overflowKind(op.Region)); err != nil {
						return nil, err
					}
					// Imprecise mid-word fault: the word's pending register
					// writes either follow the store in program order or are
					// speculative, so discarding them (plus the committed
					// store prefix — stores are strictly pc-ordered, one per
					// word) leaves exactly the sequential machine state.
					writes = writes[:0]
					branched = true
					halted = false
					nextW = throwWord
					break ops
				}
				if addr >= uint64(len(mem)) {
					e := fail(pcW, "store out of range: %#x", addr)
					e.Err = fault.ErrInvalidMemory
					return nil, e
				}
				mem[addr] = v
				st.Touch(addr)

			case exec.XAddR:
				av, bv, err := read2(read, pcW, op)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()+bv.Int())), 1})
			case exec.XAddI:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()+op.Imm)), 1})
			case exec.XSubR:
				av, bv, err := read2(read, pcW, op)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()-bv.Int())), 1})
			case exec.XSubI:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()-op.Imm)), 1})
			case exec.XMulR:
				av, bv, err := read2(read, pcW, op)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()*bv.Int())), 1})
			case exec.XMulI:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()*op.Imm)), 1})
			case exec.XDivR:
				av, bv, err := read2(read, pcW, op)
				if err != nil {
					return nil, err
				}
				// Division never traps: a speculated divide hoisted above
				// its guard may see a zero divisor, so it dismisses to 0
				// (like speculative loads). The architectural zero-divide
				// check is compiled code (bam.RaiseFault → SysFault).
				var r int64
				if b := bv.Int(); b != 0 {
					r = av.Int() / b
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(r)), 1})
			case exec.XDivI:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				var r int64
				if op.Imm != 0 {
					r = av.Int() / op.Imm
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(r)), 1})
			case exec.XModR:
				av, bv, err := read2(read, pcW, op)
				if err != nil {
					return nil, err
				}
				var r int64
				if b := bv.Int(); b != 0 {
					r = av.Int() % b
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(r)), 1})
			case exec.XModI:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				var r int64
				if op.Imm != 0 {
					r = av.Int() % op.Imm
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(r)), 1})
			case exec.XAndR:
				av, bv, err := read2(read, pcW, op)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()&bv.Int())), 1})
			case exec.XAndI:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()&op.Imm)), 1})
			case exec.XOrR:
				av, bv, err := read2(read, pcW, op)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()|bv.Int())), 1})
			case exec.XOrI:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()|op.Imm)), 1})
			case exec.XXorR:
				av, bv, err := read2(read, pcW, op)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()^bv.Int())), 1})
			case exec.XXorI:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()^op.Imm)), 1})
			case exec.XShlR:
				av, bv, err := read2(read, pcW, op)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()<<uint(bv.Int()&63))), 1})
			case exec.XShlI:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()<<uint(op.Imm&63))), 1})
			case exec.XShrR:
				av, bv, err := read2(read, pcW, op)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()>>uint(bv.Int()&63))), 1})
			case exec.XShrI:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(av.Tag(), uint64(av.Int()>>uint(op.Imm&63))), 1})

			case exec.XMkTag:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, av.WithTag(op.Tag), 1})
			case exec.XLea:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.Make(op.Tag, uint64(av.Int()+op.Imm)), 1})
			case exec.XGetTag:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, word.MakeInt(int64(av.Tag())), 1})
			case exec.XMov, exec.XMovCP:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{op.D, av, 1})
				if events != nil && op.Code == exec.XMovCP {
					events.Add(obs.Event{Step: res.Ops, PC: op.PC, Kind: obs.EvChoicePush, Arg: int64(av.Val())})
				}
			case exec.XMovI:
				writes = append(writes, pendingWrite{op.D, op.W, 1})

			case exec.XBrTagEq:
				if branched {
					continue // a higher-priority branch already resolved
				}
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				if av.Tag() == op.Tag {
					branched = true
					nextW = int(op.Target)
				}
			case exec.XBrTagNe:
				if branched {
					continue
				}
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				if av.Tag() != op.Tag {
					branched = true
					nextW = int(op.Target)
				}
			case exec.XBrCmpEqR:
				if branched {
					continue
				}
				av, bv, err := read2(read, pcW, op)
				if err != nil {
					return nil, err
				}
				if av == bv {
					branched = true
					nextW = int(op.Target)
				}
			case exec.XBrCmpNeR:
				if branched {
					continue
				}
				av, bv, err := read2(read, pcW, op)
				if err != nil {
					return nil, err
				}
				if av != bv {
					branched = true
					nextW = int(op.Target)
				}
			case exec.XBrCmpEqI:
				if branched {
					continue
				}
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				if av == op.W {
					branched = true
					nextW = int(op.Target)
				}
			case exec.XBrCmpNeI:
				if branched {
					continue
				}
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				if av != op.W {
					branched = true
					nextW = int(op.Target)
				}
			case exec.XBrCmpOrdR:
				if branched {
					continue
				}
				av, bv, err := read2(read, pcW, op)
				if err != nil {
					return nil, err
				}
				if exec.OrdCmp(av.Int(), bv.Int(), op.Cond) {
					branched = true
					nextW = int(op.Target)
				}
			case exec.XBrCmpOrdI:
				if branched {
					continue
				}
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				if exec.OrdCmp(av.Int(), op.Imm, op.Cond) {
					branched = true
					nextW = int(op.Target)
				}

			case exec.XJmp:
				if branched {
					continue
				}
				branched = true
				nextW = int(op.Target)
			case exec.XJmpR:
				if branched {
					continue
				}
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				tw, ok := p.WordOf[int(av.Val())]
				if !ok {
					return nil, fail(pcW, "indirect jump to unaddressable pc %d", av.Val())
				}
				branched = true
				nextW = tw
			case exec.XJsr:
				if branched {
					continue
				}
				writes = append(writes, pendingWrite{op.D, word.Make(word.Code, uint64(op.PC+1)), 1})
				branched = true
				nextW = int(op.Target)
				if events != nil {
					events.Add(obs.Event{Step: res.Ops, PC: op.PC, Kind: obs.EvCall, Arg: int64(op.Target)})
				}
			case exec.XHalt:
				if !branched {
					halted = true
					status = int(op.Imm)
				}

			case exec.XSysWrite:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				s, err := mterm.FormatOps(mterm.SliceMem(mem), p.IC.Atoms, av)
				if err != nil {
					return nil, err
				}
				out.WriteString(s)
			case exec.XSysNl:
				out.WriteByte('\n')
			case exec.XSysWriteCode:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				out.WriteByte(byte(av.Int()))
			case exec.XSysCompare:
				av, bv, err := read2(read, pcW, op)
				if err != nil {
					return nil, err
				}
				c, err := mterm.Compare(mterm.SliceMem(mem), p.IC.Atoms, av, bv)
				if err != nil {
					return nil, err
				}
				writes = append(writes, pendingWrite{ic.RegRV, word.MakeInt(int64(c)), 1})
			case exec.XSysBallPut:
				av, err := read(pcW, op.A)
				if err != nil {
					return nil, err
				}
				// Touch before the error check: a failed copy may still
				// have written part of the ball area.
				err = mterm.BallPut(mem, av)
				st.TouchRange(ic.BallBase, ic.BallBase+ic.BallSize)
				if err != nil {
					return nil, fail(pcW, "%v", err)
				}
				pendingFault = fault.None
				if events != nil {
					events.Add(obs.Event{Step: res.Ops, PC: op.PC, Kind: obs.EvThrow})
				}
			case exec.XSysFault:
				if err := raise(pcW, op.PC, fault.Kind(op.Imm)); err != nil {
					return nil, err
				}
				writes = writes[:0]
				branched = true
				halted = false
				nextW = throwWord
				break ops
			case exec.XSysBad:
				return nil, fmt.Errorf("vliw: unknown sys op")
			default:
				return nil, fail(pcW, "unknown opcode")
			}
		}

		// End of word: apply writes with their latencies.
		for _, pw := range writes {
			regs[pw.reg] = pw.val
			ready[pw.reg] = cycle + int64(pw.lat)
		}
		cycle++
		if halted {
			if status == 2 {
				// The unwind found no catch frame (the $throwunwind Halt 2
				// path): surface the converted fault or the uncaught ball.
				if pendingFault != fault.None {
					return nil, faultErr(pcW, pendingFault)
				}
				reason := fault.UncaughtThrow.String()
				if s, err := mterm.FormatOps(mterm.SliceMem(mem), p.IC.Atoms, mem[ic.BallBase+1]); err == nil {
					reason += ": " + s
				}
				e := fail(pcW, "%s", reason)
				e.Err = fault.ErrUncaughtThrow
				return nil, e
			}
			res.Status = status
			res.Output = out.String()
			res.Cycles = cycle
			if events != nil {
				events.Add(obs.Event{Step: res.Ops, PC: -1, Kind: obs.EvHalt, Arg: int64(status)})
			}
			res.Stats = buildStats(res, st, &disp, faultsRaised, faultsCaught, start)
			return res, nil
		}
		if branched {
			bub := int64(p.Config.BranchBubble)
			cycle += bub
			res.Bubble += bub
		}
		if events != nil && branched && nextW == failWord {
			events.Add(obs.Event{Step: res.Ops, PC: -1, Kind: obs.EvFail})
		}
		pcW = nextW
	}
}

// buildStats expands the per-opcode dispatch counts into the per-run
// record. The marked opcodes (see ic.Mark) make the dispatch array itself
// the choice-point and trail-undo counters; high-water marks come from the
// page-granular dirty set.
func buildStats(res *SimResult, st *ic.State, disp *[256]int64, raised, caught int64, start time.Time) obs.Stats {
	var cls [int(ic.NumClasses) + 1]int64
	for c := 0; c < int(exec.NumCodes); c++ {
		if n := disp[c]; n != 0 {
			cls[exec.ClassOf[c]] += n
		}
	}
	return obs.Stats{
		Steps:        res.Ops,
		Cycles:       res.Cycles,
		MemOps:       cls[ic.ClassMemory],
		ALUOps:       cls[ic.ClassALU],
		MoveOps:      cls[ic.ClassMove],
		ControlOps:   cls[ic.ClassControl],
		SysOps:       cls[ic.ClassSys],
		HeapHigh:     int64(st.MaxDirty(ic.HeapBase, ic.HeapBase+ic.HeapSize) - ic.HeapBase),
		EnvHigh:      int64(st.MaxDirty(ic.EnvBase, ic.EnvBase+ic.EnvSize) - ic.EnvBase),
		CPHigh:       int64(st.MaxDirty(ic.CPBase, ic.CPBase+ic.CPSize) - ic.CPBase),
		TrailHigh:    int64(st.MaxDirty(ic.TrailBase, ic.TrailBase+ic.TrailSize) - ic.TrailBase),
		PDLHigh:      int64(st.MaxDirty(ic.PDLBase, ic.PDLBase+ic.PDLSize) - ic.PDLBase),
		ChoicePoints: disp[exec.XMovCP],
		TrailUndos:   disp[exec.XLdUndo],
		FaultsRaised: raised,
		FaultsCaught: caught,
		Wall:         time.Since(start),
	}
}

// read2 reads an op's two register operands under the latency check.
func read2(read func(int, ic.Reg) (word.W, error), wi int, op *exec.Op) (word.W, word.W, error) {
	av, err := read(wi, op.A)
	if err != nil {
		return 0, 0, err
	}
	bv, err := read(wi, op.B)
	if err != nil {
		return 0, 0, err
	}
	return av, bv, nil
}
