// Package vliw holds the compacted very-long-instruction-word program
// representation and its cycle-level simulator. One word issues per cycle
// with a unique control flow (paper §3); each word carries up to one
// memory, ALU, control and move operation per unit. The simulator executes
// the compacted code for real — against the same tagged memory model as the
// sequential emulator — so every reported cycle count is measured, not
// estimated, and the observable results can be checked for equivalence.
package vliw

import (
	"fmt"
	"strings"
	"sync"

	"symbol/internal/exec"
	"symbol/internal/ic"
	"symbol/internal/machine"
)

// Op is one operation slot of a word. Branch targets have been linked to
// word indexes; PC is the operation's address in the original IC program
// (used for return-address generation and debugging).
type Op struct {
	Inst ic.Inst
	PC   int
}

// Word is one very long instruction: the set of operations issued in one
// cycle. Slot order encodes branch priority (original program order).
type Word []Op

// Program is a compacted, linked, executable VLIW program.
type Program struct {
	Words  []Word
	Entry  int         // entry word index
	IC     *ic.Program // the original program (atoms, symbol names)
	WordOf map[int]int // original pc of each trace head / entry → word index
	Config machine.Config
	// TraceBounds marks the first word index of every emitted trace, used
	// by listings and statistics.
	TraceBounds []int

	maxRegOnce sync.Once
	maxReg     ic.Reg

	xwOnce sync.Once
	xwords [][]exec.Op
}

// XWords returns the predecoded operation slots, one exec.Op per vliw.Op
// with the same word/slot shape as Words. The simulator dispatches on the
// dense opcodes (operand forms resolved, no HasImm/Sys selector tests);
// branch targets stay word indices, exactly as in the linked Inst. Built
// once and cached, so repeated simulations of a pooled program do not
// re-decode. Words must not be mutated after the first call.
func (p *Program) XWords() [][]exec.Op {
	p.xwOnce.Do(func() {
		p.xwords = make([][]exec.Op, len(p.Words))
		for wi, w := range p.Words {
			xw := make([]exec.Op, len(w))
			for i := range w {
				xw[i] = exec.Decode1(&w[i].Inst, w[i].PC)
			}
			p.xwords[wi] = xw
		}
	})
	return p.xwords
}

// MaxReg returns the highest register number named anywhere in the
// scheduled code, computed once and cached so repeated simulations of a
// pooled program do not rescan every word. Words must not be mutated after
// the first call.
func (p *Program) MaxReg() ic.Reg {
	p.maxRegOnce.Do(func() {
		var buf [4]ic.Reg
		for _, w := range p.Words {
			for i := range w {
				in := &w[i].Inst
				if d := in.Def(); d > p.maxReg {
					p.maxReg = d
				}
				for _, u := range in.Uses(buf[:0]) {
					if u > p.maxReg {
						p.maxReg = u
					}
				}
			}
		}
	})
	return p.maxReg
}

// OpCount returns the number of static operations (excluding empty slots).
func (p *Program) OpCount() int {
	n := 0
	for _, w := range p.Words {
		n += len(w)
	}
	return n
}

// Listing disassembles the scheduled code, one word per line.
func (p *Program) Listing() string {
	var b strings.Builder
	bounds := map[int]bool{}
	for _, t := range p.TraceBounds {
		bounds[t] = true
	}
	for i, w := range p.Words {
		if bounds[i] {
			fmt.Fprintf(&b, "; --- trace ---\n")
		}
		fmt.Fprintf(&b, "%5d:", i)
		if len(w) == 0 {
			b.WriteString("  nop")
		}
		for _, op := range w {
			fmt.Fprintf(&b, "  [%s]", strings.TrimRight(op.Inst.String(), " "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate checks structural invariants of the linked program.
func (p *Program) Validate() error {
	if p.Entry < 0 || p.Entry >= len(p.Words) {
		return fmt.Errorf("vliw: entry word %d out of range", p.Entry)
	}
	mem, alu, move, ctrl, sys := p.Config.Slots()
	for i, w := range p.Words {
		var nm, na, nv, nc, ns int
		for _, op := range w {
			switch op.Inst.Class() {
			case ic.ClassMemory:
				nm++
			case ic.ClassALU:
				na++
			case ic.ClassMove:
				nv++
			case ic.ClassControl:
				nc++
			case ic.ClassSys:
				ns++
			}
			switch op.Inst.Op {
			case ic.BrTag, ic.BrCmp, ic.Jmp, ic.Jsr:
				if op.Inst.Target < 0 || op.Inst.Target >= len(p.Words) {
					return fmt.Errorf("vliw: word %d branches to invalid word %d", i, op.Inst.Target)
				}
			}
		}
		if nm > mem || na > alu || nv > move || nc > ctrl || ns > sys {
			return fmt.Errorf("vliw: word %d oversubscribes resources (mem %d alu %d move %d ctrl %d sys %d)",
				i, nm, na, nv, nc, ns)
		}
		if p.Config.SplitFormats && (na+nv > 0) && (nc+ns > 0) {
			return fmt.Errorf("vliw: word %d mixes ALU and control formats", i)
		}
	}
	return nil
}
