// Package benchprog embeds the Prolog benchmark programs used throughout
// the paper's evaluation (a re-creation of the Aquarius Benchmark Suite
// subset named in Tables 1-4): list processing (conc30, reverse, qsort),
// symbolic differentiation (divide10, log10, ops8, times10), search
// (queens_8, sendmore, zebra, crypt, mu), deterministic recursion (tak),
// database queries (query), a theorem prover (prover) and tree building
// (serialise).
//
// Each program is self-contained (its own library predicates) and defines
// main/0, following the original suite's convention of running one
// benchmark query to completion.
package benchprog

import (
	"fmt"
	"sort"
)

// Benchmark is one embedded benchmark program.
type Benchmark struct {
	Name string
	// Source is the Prolog text; it defines main/0.
	Source string
	// Expect is the exact output of a correct run ("" if the program
	// writes nothing); used by the equivalence tests.
	Expect string
	// Heavy marks long-running programs excluded from -short test runs.
	Heavy bool
}

var registry = map[string]*Benchmark{}

func register(b *Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// Get returns a benchmark by name.
func Get(name string) (*Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("benchprog: unknown benchmark %q", name)
	}
	return b, nil
}

// Names lists all benchmark names in alphabetical order.
func Names() []string {
	var out []string
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every benchmark in alphabetical order.
func All() []*Benchmark {
	var out []*Benchmark
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// Suite returns the benchmarks used in the paper's Table 3 / Figure 6
// experiment, in the paper's row order.
func Suite() []*Benchmark {
	names := []string{
		"conc30", "divide10", "log10", "mu", "reverse", "ops8", "prover",
		"qsort", "queens_8", "sendmore", "serialise", "tak", "times10", "zebra",
	}
	out := make([]*Benchmark, len(names))
	for i, n := range names {
		b, err := Get(n)
		if err != nil {
			panic(err)
		}
		out[i] = b
	}
	return out
}

const listLib = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
`

func init() {
	register(&Benchmark{
		Name: "conc30",
		Source: listLib + `
main :- app([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,
             16,17,18,19,20,21,22,23,24,25,26,27,28,29,30],
            [31,32], R),
        last(R, X), write(X), nl.
last([X], X) :- !.
last([_|T], X) :- last(T, X).
`,
		Expect: "32\n",
	})

	register(&Benchmark{
		Name: "reverse",
		Source: listLib + `
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
main :- nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,
              16,17,18,19,20,21,22,23,24,25,26,27,28,29,30], R),
        R = [30|_], write(ok), nl.
`,
		Expect: "ok\n",
	})

	register(&Benchmark{
		Name: "qsort",
		Source: `
qsort([], R, R).
qsort([X|L], R, R0) :-
    partition(L, X, L1, L2),
    qsort(L2, R1, R0),
    qsort(L1, R, [X|R1]).
partition([], _, [], []).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
main :- qsort([27,74,17,33,94,18,46,83,65,2,
               32,53,28,85,99,47,28,82,6,11,
               55,29,39,81,90,37,10,0,66,51,
               7,21,85,27,31,63,75,4,95,99,
               11,28,61,74,18,92,40,53,59,8], S, []),
        S = [F|_], F = 0, write(sorted), nl.
`,
		Expect: "sorted\n",
	})

	// Symbolic differentiation (Warren's deriv family).
	const derivLib = `
d(U+V, X, DU+DV) :- !, d(U, X, DU), d(V, X, DV).
d(U-V, X, DU-DV) :- !, d(U, X, DU), d(V, X, DV).
d(U*V, X, DU*V+U*DV) :- !, d(U, X, DU), d(V, X, DV).
d(U/V, X, (DU*V-U*DV)/(V^2)) :- !, d(U, X, DU), d(V, X, DV).
d(U^N, X, DU*N*U^N1) :- !, integer(N), N1 is N-1, d(U, X, DU).
d(-U, X, -DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U)*DU) :- !, d(U, X, DU).
d(log(U), X, DU/U) :- !, d(U, X, DU).
d(X, X, D) :- !, D = 1.
d(_, _, 0).
`
	register(&Benchmark{
		Name: "times10",
		Source: derivLib + `
main :- d(((((((((x*x)*x)*x)*x)*x)*x)*x)*x)*x, x, D),
        nonvar(D), write(done), nl.
`,
		Expect: "done\n",
	})
	register(&Benchmark{
		Name: "divide10",
		Source: derivLib + `
main :- d(((((((((x/x)/x)/x)/x)/x)/x)/x)/x)/x, x, D),
        nonvar(D), write(done), nl.
`,
		Expect: "done\n",
	})
	register(&Benchmark{
		Name: "log10",
		Source: derivLib + `
main :- d(log(log(log(log(log(log(log(log(log(log(x)))))))))), x, D),
        nonvar(D), write(done), nl.
`,
		Expect: "done\n",
	})
	register(&Benchmark{
		Name: "ops8",
		Source: derivLib + `
main :- d((x+1) * ((x^2+2) * (x^3+3)), x, D),
        nonvar(D), write(done), nl.
`,
		Expect: "done\n",
	})

	register(&Benchmark{
		Name: "tak",
		Source: `
tak(X, Y, Z, A) :- X =< Y, !, A = Z.
tak(X, Y, Z, A) :-
    X1 is X-1, Y1 is Y-1, Z1 is Z-1,
    tak(X1, Y, Z, A1),
    tak(Y1, Z, X, A2),
    tak(Z1, X, Y, A3),
    tak(A1, A2, A3, A).
main :- tak(18, 12, 6, A), write(A), nl.
`,
		Expect: "7\n",
		Heavy:  true,
	})

	register(&Benchmark{
		Name: "queens_8",
		Source: `
main :- queens(8, Qs), write(Qs), nl.
queens(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).
place([], Qs, Qs).
place(Unplaced, Safe, Qs) :-
    selectq(Q, Unplaced, Rest),
    \+ attack(Q, Safe),
    place(Rest, [Q|Safe], Qs).
attack(X, Xs) :- attack3(X, 1, Xs).
attack3(X, N, [Y|_]) :- X =:= Y+N.
attack3(X, N, [Y|_]) :- X =:= Y-N.
attack3(X, N, [_|Ys]) :- N1 is N+1, attack3(X, N1, Ys).
selectq(X, [X|T], T).
selectq(X, [H|T], [H|R]) :- selectq(X, T, R).
range(N, N, [N]) :- !.
range(M, N, [M|Ns]) :- M < N, M1 is M+1, range(M1, N, Ns).
`,
		Expect: "[4,2,7,3,6,8,5,1]\n",
		Heavy:  true,
	})

	register(&Benchmark{
		Name: "serialise",
		Source: `
main :- serialise([0'a,0'b,0'l,0'e,0' ,0'w,0'a,0's,0' ,0'i,0' ,
                   0'e,0'r,0'e,0' ,0'i,0' ,0's,0'a,0'w,0' ,
                   0'e,0'l,0'b,0'a], R),
        write(R), nl.
serialise(L, R) :- pairlists(L, R, A), arrange(A, T), numbered(T, 1, _).
pairlists([X|L], [Y|R], [pair(X,Y)|A]) :- pairlists(L, R, A).
pairlists([], [], []).
arrange([X|L], tree(T1, X, T2)) :-
    split(L, X, L1, L2),
    arrange(L1, T1),
    arrange(L2, T2).
arrange([], void).
split([X|L], X, L1, L2) :- !, split(L, X, L1, L2).
split([X|L], Y, [X|L1], L2) :- before(X, Y), !, split(L, Y, L1, L2).
split([X|L], Y, L1, [X|L2]) :- before(Y, X), !, split(L, Y, L1, L2).
split([], _, [], []).
before(pair(X1,_), pair(X2,_)) :- X1 < X2.
numbered(tree(T1, pair(_,N1), T2), N0, N) :-
    numbered(T1, N0, N1),
    N2 is N1+1,
    numbered(T2, N2, N).
numbered(void, N, N).
`,
		Expect: "[2,3,6,4,1,9,2,8,1,5,1,4,7,4,1,5,1,8,2,9,1,4,6,3,2]\n",
	})

	register(&Benchmark{
		Name: "mu",
		Source: listLib + `
main :- theorem(5, [m,u,i,i,u]), write(proved), nl.
theorem(_, [m,i]).
theorem(D, S) :-
    D > 0,
    D1 is D-1,
    theorem(D1, S1),
    rule(S1, S).
rule(S, NS) :- rule1(S, NS).
rule(S, NS) :- rule2(S, NS).
rule(S, NS) :- rule3(S, NS).
rule(S, NS) :- rule4(S, NS).
rule1(S, NS) :- app(X, [i], S), app(X, [i,u], NS).
rule2([m|X], [m|NX]) :- app(X, X, NX).
rule3(S, NS) :- app(P, R, S), app([i,i,i], T, R), app(P, [u|T], NS).
rule4(S, NS) :- app(P, R, S), app([u,u], T, R), app(P, T, NS).
`,
		Expect: "proved\n",
		Heavy:  true,
	})

	register(&Benchmark{
		Name: "query",
		Source: `
main :- query(_), fail.
main :- write(done), nl.
query([C1, D1, C2, D2]) :-
    density(C1, D1),
    density(C2, D2),
    D1 > D2,
    T1 is 20*D1,
    T2 is 21*D2,
    T1 < T2.
density(C, D) :- pop(C, P), area(C, A), D is P*100//A.
pop(china,      8250).   area(china,      3380).
pop(india,      5863).   area(india,      1139).
pop(ussr,       2521).   area(ussr,       8708).
pop(usa,        2119).   area(usa,        3609).
pop(indonesia,  1276).   area(indonesia,   570).
pop(japan,      1097).   area(japan,       148).
pop(brazil,     1042).   area(brazil,     3288).
pop(bangladesh,  750).   area(bangladesh,   55).
pop(pakistan,    682).   area(pakistan,    311).
pop(w_germany,   620).   area(w_germany,    96).
pop(nigeria,     613).   area(nigeria,     373).
pop(mexico,      581).   area(mexico,      764).
pop(uk,          559).   area(uk,           86).
pop(italy,       554).   area(italy,       116).
pop(france,      525).   area(france,      213).
pop(philippines, 415).   area(philippines, 90).
pop(thailand,    410).   area(thailand,    200).
pop(turkey,      383).   area(turkey,      296).
pop(egypt,       364).   area(egypt,       386).
pop(spain,       352).   area(spain,       190).
pop(poland,      337).   area(poland,      121).
pop(s_korea,     335).   area(s_korea,      37).
pop(iran,        320).   area(iran,        628).
pop(ethiopia,    272).   area(ethiopia,    350).
pop(argentina,   251).   area(argentina,  1080).
`,
		Expect: "done\n",
	})

	register(&Benchmark{
		Name: "crypt",
		Source: `
% Crypt-multiplication with odd/even constraints (Aquarius crypt):
%     O E E
%   x   E E
%   -------
% every digit of the two partial products and the total must have the
% parity its position demands. Finds the first solution.
main :- crypt(L), write(L), nl.
odd(1). odd(3). odd(5). odd(7). odd(9).
even(0). even(2). even(4). even(6). even(8).
evenz(2). evenz(4). evenz(6). evenz(8).
crypt([A,B,C,D,E]) :-
    odd(A), even(B), even(C),
    evenz(D), evenz(E),
    N is A*100 + B*10 + C,
    P1 is N*E, pat_eoee(P1),
    P2 is N*D, pat_eoe(P2),
    T is P1 + 10*P2, pat_ooee(T).
pat_eoee(X) :- X >= 1000, X < 10000,
    D0 is X mod 10, even1(D0),
    X1 is X // 10, D1 is X1 mod 10, even1(D1),
    X2 is X1 // 10, D2 is X2 mod 10, odd1(D2),
    D3 is X2 // 10, even1(D3).
pat_eoe(X) :- X >= 100, X < 1000,
    D0 is X mod 10, even1(D0),
    X1 is X // 10, D1 is X1 mod 10, odd1(D1),
    D2 is X1 // 10, even1(D2).
pat_ooee(X) :- X >= 1000, X < 10000,
    D0 is X mod 10, even1(D0),
    X1 is X // 10, D1 is X1 mod 10, even1(D1),
    X2 is X1 // 10, D2 is X2 mod 10, odd1(D2),
    D3 is X2 // 10, odd1(D3).
odd1(X) :- 1 =:= X mod 2.
even1(X) :- 0 =:= X mod 2.
`,
		Expect: "[3,4,8,2,8]\n",
	})

	register(&Benchmark{
		Name: "sendmore",
		Source: `
% SEND + MORE = MONEY by exhaustive generate-and-test over distinct
% digits (M fixed to 1), the shape of the original benchmark's search.
main :- solve(S, E, N, D, M, O, R, Y),
        write([S,E,N,D]), write(+), write([M,O,R,E]), write(=),
        write([M,O,N,E,Y]), nl.
selectd(X, [X|T], T).
selectd(X, [H|T], [H|R]) :- selectd(X, T, R).
solve(S, E, N, D, M, O, R, Y) :-
    M = 1,
    selectd(S, [2,3,4,5,6,7,8,9], D1),
    selectd(E, [0|D1], D2),
    selectd(N, D2, D3),
    selectd(D, D3, D4),
    selectd(O, D4, D5),
    selectd(R, D5, D6),
    selectd(Y, D6, _),
    V1 is ((S*10+E)*10+N)*10+D,
    V2 is ((M*10+O)*10+R)*10+E,
    V3 is ((((M*10+O)*10+N)*10+E)*10)+Y,
    V3 =:= V1+V2.
`,
		Expect: "[9,5,6,7]+[1,0,8,5]=[1,0,6,5,2]\n",
		Heavy:  true,
	})

	register(&Benchmark{
		Name: "zebra",
		Source: listLib + `
% The five-houses (zebra) puzzle.
main :- houses(Hs),
        member(house(_, zebra, _, _, _), Hs),
        member(house(N, _, _, water, _), Hs),
        write(N), nl.
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
right_of(A, B, [B,A|_]).
right_of(A, B, [_|T]) :- right_of(A, B, T).
next_to(A, B, [A,B|_]).
next_to(A, B, [B,A|_]).
next_to(A, B, [_|T]) :- next_to(A, B, T).
houses(Hs) :-
    Hs = [house(norwegian, _, _, _, _), _, house(_, _, _, milk, _), _, _],
    member(house(englishman, _, _, _, red), Hs),
    right_of(house(_, _, _, _, green), house(_, _, _, _, ivory), Hs),
    next_to(house(norwegian, _, _, _, _), house(_, _, _, _, blue), Hs),
    member(house(_, _, kools, _, yellow), Hs),
    member(house(spaniard, dog, _, _, _), Hs),
    member(house(_, _, _, coffee, green), Hs),
    member(house(ukrainian, _, _, tea, _), Hs),
    member(house(_, _, luckystrike, orangejuice, _), Hs),
    member(house(japanese, _, parliaments, _, _), Hs),
    member(house(_, _, oldgold, _, _), Hs),
    member(house(_, snails, oldgold, _, _), Hs),
    next_to(house(_, _, chesterfields, _, _), house(_, fox, _, _, _), Hs),
    next_to(house(_, _, kools, _, _), house(_, horse, _, _, _), Hs).
`,
		Expect: "norwegian\n",
		Heavy:  true,
	})

	register(&Benchmark{
		Name: "prover",
		Source: listLib + `
% A Wang-algorithm propositional sequent prover, run over a set of
% theorems (the shape of the Aquarius 'prover' benchmark).
main :- theorems(Ts), prove_all(Ts), write(ok), nl.
theorems([
    seq([], [imp(and(p,q), p)]),
    seq([], [imp(p, or(p,q))]),
    seq([], [imp(and(p, imp(p,q)), q)]),
    seq([], [imp(imp(p,q), imp(not(q), not(p)))]),
    seq([], [imp(and(imp(p,q), imp(q,r)), imp(p,r))]),
    seq([], [or(p, not(p))]),
    seq([], [imp(not(not(p)), p)]),
    seq([], [imp(and(or(p,q), not(p)), q)])
]).
prove_all([]).
prove_all([T|Ts]) :- prove(T), prove_all(Ts).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
prove(seq(L, R)) :- member(X, L), member(X, R), !.
prove(seq(L, R)) :- member(not(X), L), !, del(not(X), L, L1),
                    prove(seq(L1, [X|R])).
prove(seq(L, R)) :- member(not(X), R), !, del(not(X), R, R1),
                    prove(seq([X|L], R1)).
prove(seq(L, R)) :- member(and(X,Y), L), !, del(and(X,Y), L, L1),
                    prove(seq([X,Y|L1], R)).
prove(seq(L, R)) :- member(or(X,Y), R), !, del(or(X,Y), R, R1),
                    prove(seq(L, [X,Y|R1])).
prove(seq(L, R)) :- member(imp(X,Y), R), !, del(imp(X,Y), R, R1),
                    prove(seq([X|L], [Y|R1])).
prove(seq(L, R)) :- member(or(X,Y), L), !, del(or(X,Y), L, L1),
                    prove(seq([X|L1], R)),
                    prove(seq([Y|L1], R)).
prove(seq(L, R)) :- member(and(X,Y), R), !, del(and(X,Y), R, R1),
                    prove(seq(L, [X|R1])),
                    prove(seq(L, [Y|R1])).
prove(seq(L, R)) :- member(imp(X,Y), L), !, del(imp(X,Y), L, L1),
                    prove(seq(L1, [X|R])),
                    prove(seq([Y|L1], R)).
del(X, [X|T], T) :- !.
del(X, [H|T], [H|R]) :- del(X, T, R).
`,
		Expect: "ok\n",
	})
}
