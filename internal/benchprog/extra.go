package benchprog

// Additional classic benchmark programs beyond the paper's tables. They are
// part of the registry (so the equivalence tests cover them) but not of the
// Table 3 Suite().

func init() {
	register(&Benchmark{
		Name: "hanoi",
		Source: `
% Towers of Hanoi, 14 discs: a pure control benchmark (no heap terms).
main :- hanoi(14), write(done), nl.
hanoi(N) :- move(N, left, centre, right).
move(0, _, _, _) :- !.
move(N, A, B, C) :-
    M is N-1,
    move(M, A, C, B),
    move(M, C, B, A).
`,
		Expect: "done\n",
	})

	register(&Benchmark{
		Name: "fib",
		Source: `
% Naive doubly-recursive Fibonacci: deterministic arithmetic recursion.
main :- fib(20, F), write(F), nl.
fib(0, 1) :- !.
fib(1, 1) :- !.
fib(N, F) :-
    N1 is N-1, N2 is N-2,
    fib(N1, F1), fib(N2, F2),
    F is F1+F2.
`,
		Expect: "10946\n",
	})

	register(&Benchmark{
		Name: "flatten",
		Source: `
% Flatten a nested list structure (accumulator version with cuts).
main :- flat([1,[2,[3,4],5],[[[]]],[6|[7]],[],[[8]]], [], R),
        write(R), nl.
flat([], R, R) :- !.
flat([H|T], Acc, R) :- !, flat(T, Acc, R1), flat(H, R1, R).
flat(X, Acc, [X|Acc]).
`,
		Expect: "[1,2,3,4,5,6,7,8]\n",
	})

	register(&Benchmark{
		Name: "poly",
		Source: `
% Symbolic polynomial arithmetic (the shape of Gabriel's poly_10 as used
% in the Aquarius suite): raise 1+x+y+z to the 10th power, then check by
% evaluating at x=y=z=1, which must give 4^10 = 1048576.
%
% Representation: an integer, or poly(Var, [term(Exp, Coef)|...]) with
% exponents ascending and coefficients themselves polynomials in later
% variables (x < y < z).
main :- test_poly(P), poly_exp(10, P, R),
        poly_eval(R, V), write(V), nl.

lessv(x, y). lessv(x, z). lessv(y, z).

test_poly(poly(x, [term(0, Q), term(1, 1)])) :-
    Q = poly(y, [term(0, R), term(1, 1)]),
    R = poly(z, [term(0, 1), term(1, 1)]).

% poly_add(P1, P2, Sum)
poly_add(poly(V, T1), poly(V, T2), poly(V, T3)) :- !,
    term_add(T1, T2, T3).
poly_add(poly(V1, T1), poly(V2, T2), R) :- !,
    poly_poly_add(V1, T1, V2, T2, R).
poly_add(poly(V, T1), C, poly(V, T2)) :- !,
    add_to_order_zero(T1, C, T2).
poly_add(C, poly(V, T1), poly(V, T2)) :- !,
    add_to_order_zero(T1, C, T2).
poly_add(C1, C2, C) :- C is C1+C2.

poly_poly_add(V1, T1, V2, T2, poly(V1, T3)) :-
    lessv(V1, V2), !,
    add_to_order_zero(T1, poly(V2, T2), T3).
poly_poly_add(V1, T1, V2, T2, poly(V2, T3)) :-
    add_to_order_zero(T2, poly(V1, T1), T3).

add_to_order_zero([term(0, C1)|Ts], C2, [term(0, C)|Ts]) :- !,
    poly_add(C1, C2, C).
add_to_order_zero(Ts, C, [term(0, C)|Ts]).

term_add([], T, T) :- !.
term_add(T, [], T) :- !.
term_add([term(E, C1)|T1], [term(E, C2)|T2], [term(E, C)|T]) :- !,
    poly_add(C1, C2, C),
    term_add(T1, T2, T).
term_add([term(E1, C1)|T1], [term(E2, C2)|T2], [term(E1, C1)|T]) :-
    E1 < E2, !,
    term_add(T1, [term(E2, C2)|T2], T).
term_add(T1, [term(E2, C2)|T2], [term(E2, C2)|T]) :-
    term_add(T1, T2, T).

% poly_mul(P1, P2, Product)
poly_mul(poly(V, T1), poly(V, T2), poly(V, T3)) :- !,
    term_mul(T1, T2, T3).
poly_mul(poly(V1, T1), poly(V2, T2), R) :- !,
    poly_poly_mul(V1, T1, V2, T2, R).
poly_mul(poly(V, T1), C, poly(V, T2)) :- !,
    mul_through(T1, C, T2).
poly_mul(C, poly(V, T1), poly(V, T2)) :- !,
    mul_through(T1, C, T2).
poly_mul(C1, C2, C) :- C is C1*C2.

poly_poly_mul(V1, T1, V2, T2, poly(V1, T3)) :-
    lessv(V1, V2), !,
    mul_through(T1, poly(V2, T2), T3).
poly_poly_mul(V1, T1, V2, T2, poly(V2, T3)) :-
    mul_through(T2, poly(V1, T1), T3).

mul_through([], _, []).
mul_through([term(E, C)|Ts], P, [term(E, C2)|Ts2]) :-
    poly_mul(C, P, C2),
    mul_through(Ts, P, Ts2).

term_mul([], _, []) :- !.
term_mul(_, [], []) :- !.
term_mul([T|Ts], T2, T3) :-
    single_term_mul(T, T2, T1s),
    term_mul(Ts, T2, T2s),
    term_add(T1s, T2s, T3).

single_term_mul(_, [], []).
single_term_mul(term(E1, C1), [term(E2, C2)|Ts], [term(E, C)|T]) :-
    E is E1+E2,
    poly_mul(C1, C2, C),
    single_term_mul(term(E1, C1), Ts, T).

% poly_exp(N, P, P^N) by binary exponentiation.
poly_exp(0, _, 1) :- !.
poly_exp(N, P, R) :-
    0 =:= N mod 2, !,
    M is N // 2,
    poly_exp(M, P, H),
    poly_mul(H, H, R).
poly_exp(N, P, R) :-
    M is N-1,
    poly_exp(M, P, H),
    poly_mul(P, H, R).

% Evaluate with every variable = 1: sum of all coefficients.
poly_eval(poly(_, Ts), V) :- !, terms_eval(Ts, V).
poly_eval(C, C).
terms_eval([], 0).
terms_eval([term(_, C)|Ts], V) :-
    poly_eval(C, V1),
    terms_eval(Ts, V2),
    V is V1+V2.
`,
		Expect: "1048576\n",
		Heavy:  true,
	})

	register(&Benchmark{
		Name: "boyer",
		Source: `
% A Boyer-Moore-style tautology checker (the shape of Gabriel's boyer
% benchmark): terms are rewritten to if-normal form with a rule base,
% driven generically through functor/3 and arg/3, then decided by case
% splitting. The theorem is a transitivity chain over opaque leaves that
% themselves get rewritten structurally.
main :- formula(W), rewrite(W, N),
        ( tautology(N, [], []) -> write(proved) ; write(failed) ), nl.

formula(implies(and(implies(X, Y),
             and(implies(Y, Z),
             and(implies(Z, U),
                 implies(U, V)))),
         implies(X, V))) :-
    X = f(plus(plus(a, b), plus(c, zero))),
    Y = f(times(times(a, b), plus(c, d))),
    Z = f(reverse(append(append(a, b), nil))),
    U = equal2(plus(a, b), difference(x, y)),
    V = lessp(remainder(a, b), member(a, length(b))).

% Generic innermost rewriting: rebuild each compound with rewritten
% arguments, then apply rules at the root until none fires.
rewrite(Old, New) :- atomic(Old), !, New = Old.
rewrite(Old, New) :-
    functor(Old, F, N),
    functor(Mid, F, N),
    rewrite_args(N, Old, Mid),
    ( rule(Mid, Next) -> rewrite(Next, New) ; New = Mid ).

rewrite_args(0, _, _) :- !.
rewrite_args(N, Old, Mid) :-
    arg(N, Old, OldArg),
    arg(N, Mid, MidArg),
    rewrite(OldArg, MidArg),
    N1 is N-1,
    rewrite_args(N1, Old, Mid).

% Boolean connectives in if-form, plus structural simplifications that
% fire inside the opaque leaves.
rule(if(if(A, B, C), D, E), if(A, if(B, D, E), if(C, D, E))).
rule(if(t, X, _), X).
rule(if(f, _, X), X).
rule(and(P, Q), if(P, if(Q, t, f), f)).
rule(or(P, Q), if(P, t, if(Q, t, f))).
rule(implies(P, Q), if(P, if(Q, t, f), t)).
rule(not(P), if(P, f, t)).
rule(plus(plus(X, Y), Z), plus(X, plus(Y, Z))).
rule(plus(X, zero), X).
rule(times(times(X, Y), Z), times(X, times(Y, Z))).
rule(append(append(X, Y), Z), append(X, append(Y, Z))).
rule(reverse(nil), nil).
rule(difference(X, X), zero).
rule(equal2(X, X), t).
rule(remainder(_, one), zero).
rule(member(X, cons(X, _)), t).

tautology(t, _, _) :- !.
tautology(Wff, Tlist, Flist) :-
    ( memb(Wff, Tlist) -> true
    ; memb(Wff, Flist) -> fail
    ; Wff = if(If, Then, Else) ->
        ( memb(If, Tlist) -> tautology(Then, Tlist, Flist)
        ; memb(If, Flist) -> tautology(Else, Tlist, Flist)
        ; tautology(Then, [If|Tlist], Flist),
          tautology(Else, Tlist, [If|Flist])
        )
    ; fail
    ).

memb(X, [Y|_]) :- X == Y, !.
memb(X, [_|T]) :- memb(X, T).
`,
		Expect: "proved\n",
	})

	register(&Benchmark{
		Name: "browse",
		Source: `
% Wildcard pattern matching over a database of symbolic structures, the
% shape of Gabriel's browse benchmark: '?' matches any single symbol,
% star matches any (possibly empty) run of symbols.
main :- db(Db), patterns(Ps), run(Ps, Db, 0, N), write(N), nl.

run([], _, N, N).
run([P|Ps], Db, Acc, N) :-
    count(P, Db, 0, C),
    Acc1 is Acc + C,
    run(Ps, Db, Acc1, N).

count(_, [], C, C).
count(P, [D|Ds], Acc, C) :-
    ( match(P, D) -> Acc1 is Acc + 1 ; Acc1 = Acc ),
    count(P, Ds, Acc1, C).

match([], []).
match([star|Ps], D) :- matchstar(Ps, D).
match(['?'|Ps], [_|Ds]) :- match(Ps, Ds).
match([S|Ps], [S|Ds]) :- atomic(S), match(Ps, Ds).
match([sub(P)|Ps], [D|Ds]) :- match(P, D), match(Ps, Ds).

matchstar(Ps, D) :- match(Ps, D).
matchstar(Ps, [_|Ds]) :- matchstar(Ps, Ds).

patterns([
    [star, a, '?', b, star],
    [a, star, b],
    [star, sub([c, star]), star],
    ['?', '?', '?'],
    [star]
]).

db([
    [a, x, b],
    [a, b],
    [x, a, y, b, z],
    [sub1, [c, d, e]],
    [c, a, c, b],
    [a, a, b, b],
    [x, y, z],
    [[c], x],
    [a, q, b, q, b],
    [b, a, b]
]).
`,
		Expect: "24\n",
	})
}
