package benchprog_test

import (
	"testing"

	"symbol"
	"symbol/internal/benchprog"
)

// TestRegistry checks basic registry integrity.
func TestRegistry(t *testing.T) {
	if len(benchprog.Names()) < 15 {
		t.Fatalf("expected at least 15 benchmarks, got %d", len(benchprog.Names()))
	}
	if len(benchprog.Suite()) != 14 {
		t.Fatalf("paper suite must have 14 rows, got %d", len(benchprog.Suite()))
	}
	if _, err := benchprog.Get("nosuch"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

// TestBenchmarksRun compiles and executes every benchmark program and
// verifies the expected output. Heavy programs are skipped with -short.
func TestBenchmarksRun(t *testing.T) {
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if b.Heavy && testing.Short() {
				t.Skip("heavy benchmark skipped in short mode")
			}
			prog, err := symbol.Compile(b.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if u := prog.Undefined(); len(u) != 0 {
				t.Fatalf("undefined predicates: %v", u)
			}
			res, err := prog.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !res.Succeeded {
				t.Fatalf("benchmark failed (no solution), output %q", res.Output)
			}
			if b.Expect != "" && res.Output != b.Expect {
				t.Fatalf("output %q, want %q", res.Output, b.Expect)
			}
			t.Logf("steps=%d output=%q", res.Steps, res.Output)
		})
	}
}
