package expand

import (
	"strings"
	"testing"

	"symbol/internal/bam"
	"symbol/internal/emu"
	"symbol/internal/ic"
	"symbol/internal/term"
	"symbol/internal/word"
)

// translate builds a unit whose main/0 is the given BAM instructions.
func translate(t *testing.T, body []bam.Instr, numLabels int) *ic.Program {
	t.Helper()
	code := append([]bam.Instr{{Op: bam.Proc, Name: "main", Arity: 0}}, body...)
	u := &bam.Unit{Code: code, NumLabels: numLabels + 1, NextTemp: ic.FirstTemp + 64}
	prog, err := Translate(u, term.NewTable())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func runBAM(t *testing.T, body []bam.Instr, numLabels int) *emu.Result {
	t.Helper()
	prog := translate(t, body, numLabels)
	res, err := emu.Run(prog, emu.Options{MaxSteps: 1e6})
	if err != nil {
		t.Fatalf("%v\n%s", err, prog.Listing())
	}
	return res
}

var r0 = ic.FirstTemp

func TestHaltStatus(t *testing.T) {
	res := runBAM(t, []bam.Instr{{Op: bam.HaltI, N: 7}}, 0)
	if res.Status != 7 {
		t.Errorf("status %d", res.Status)
	}
}

func TestReturnFromMain(t *testing.T) {
	// main returns: the entry stub then halts with 0.
	res := runBAM(t, []bam.Instr{{Op: bam.Ret}}, 0)
	if res.Status != 0 {
		t.Errorf("status %d", res.Status)
	}
}

func TestFailAtBottomHalts1(t *testing.T) {
	res := runBAM(t, []bam.Instr{{Op: bam.FailI}}, 0)
	if res.Status != 1 {
		t.Errorf("status %d", res.Status)
	}
}

func TestTryRetryTrustCycle(t *testing.T) {
	// try L1; fail → L1: retry L2 (restores) ; fail → L2: trust; succeed.
	body := []bam.Instr{
		{Op: bam.Move, Dst: ic.ArgReg(0), Src: bam.IntV(1)},
		{Op: bam.Try, L: 1, N: 1},
		{Op: bam.FailI},
		{Op: bam.Lbl, L: 1},
		{Op: bam.RestoreArgs, N: 1},
		{Op: bam.Retry, L: 2},
		{Op: bam.FailI},
		{Op: bam.Lbl, L: 2},
		{Op: bam.RestoreArgs, N: 1},
		{Op: bam.Trust},
		// The restored argument register must still hold 1.
		{Op: bam.BrEq, V1: bam.Reg(ic.ArgReg(0)), Cond: ic.CondNe, V2: bam.IntV(1), L: 0},
		{Op: bam.HaltI, N: 0},
	}
	res := runBAM(t, body, 2)
	if res.Status != 0 {
		t.Error("retry/trust cycle with argument restoration failed")
	}
}

func TestTrailUnwindRestoresBinding(t *testing.T) {
	// Create a heap cell, push a choice point, bind it, fail: the retry
	// path must observe the cell unbound again.
	body := []bam.Instr{
		{Op: bam.LeaH, Dst: r0, Tag: word.Ref, N: 0},
		{Op: bam.StoreH, N: 0, Src: bam.Reg(r0)},
		{Op: bam.AddH, N: 1},
		{Op: bam.Move, Dst: ic.ArgReg(0), Src: bam.Reg(r0)},
		{Op: bam.Try, L: 1, N: 1},
		{Op: bam.Bind, Reg1: r0, Src: bam.IntV(42)},
		{Op: bam.FailI},
		{Op: bam.Lbl, L: 1},
		{Op: bam.RestoreArgs, N: 1},
		{Op: bam.Trust},
		// Dereference: must be unbound (self reference) again.
		{Op: bam.Deref, Dst: r0 + 1, Src: bam.Reg(ic.ArgReg(0))},
		{Op: bam.BrTagI, Reg1: r0 + 1, Cond: ic.CondNe, Tag: word.Ref, L: 0},
		{Op: bam.HaltI, N: 0},
	}
	res := runBAM(t, body, 1)
	if res.Status != 0 {
		t.Error("trail unwind did not restore the binding")
	}
}

func TestAllocateDeallocateRoundTrip(t *testing.T) {
	body := []bam.Instr{
		{Op: bam.Allocate, N: 2},
		{Op: bam.Move, Dst: r0, Src: bam.IntV(11)},
		{Op: bam.PutY, N: 0, Src: bam.Reg(r0)},
		{Op: bam.Move, Dst: r0, Src: bam.IntV(22)},
		{Op: bam.PutY, N: 1, Src: bam.Reg(r0)},
		{Op: bam.GetY, Dst: r0 + 1, N: 0},
		{Op: bam.BrEq, V1: bam.Reg(r0 + 1), Cond: ic.CondNe, V2: bam.IntV(11), L: 0},
		{Op: bam.GetY, Dst: r0 + 2, N: 1},
		{Op: bam.BrEq, V1: bam.Reg(r0 + 2), Cond: ic.CondNe, V2: bam.IntV(22), L: 0},
		{Op: bam.Deallocate},
		{Op: bam.HaltI, N: 0},
	}
	if res := runBAM(t, body, 0); res.Status != 0 {
		t.Error("environment slots broken")
	}
}

func TestUnifyRoutineAtoms(t *testing.T) {
	tbl := term.NewTable()
	_ = tbl
	// unify(foo, foo) succeeds; unify(foo, bar) fails to $fail → halt 1.
	mk := func(a, b string) []bam.Instr {
		return []bam.Instr{
			{Op: bam.Move, Dst: r0, Src: bam.AtomV(a)},
			{Op: bam.Move, Dst: r0 + 1, Src: bam.AtomV(b)},
			{Op: bam.UnifyCall, Reg1: r0, Reg2: r0 + 1},
			{Op: bam.HaltI, N: 0},
		}
	}
	if res := runBAM(t, mk("foo", "foo"), 0); res.Status != 0 {
		t.Error("unify(foo,foo) must succeed")
	}
	if res := runBAM(t, mk("foo", "bar"), 0); res.Status != 1 {
		t.Error("unify(foo,bar) must fail")
	}
}

func TestUnifyRoutineLists(t *testing.T) {
	// Build [1|X] and [1|2] on the heap and unify: X must become 2.
	body := []bam.Instr{
		// cell X
		{Op: bam.LeaH, Dst: r0, Tag: word.Ref, N: 0},
		{Op: bam.StoreH, N: 0, Src: bam.Reg(r0)},
		{Op: bam.AddH, N: 1},
		// list [1|X]
		{Op: bam.StoreH, N: 0, Src: bam.IntV(1)},
		{Op: bam.StoreH, N: 1, Src: bam.Reg(r0)},
		{Op: bam.LeaH, Dst: r0 + 1, Tag: word.Lst, N: 0},
		{Op: bam.AddH, N: 2},
		// list [1|2]
		{Op: bam.StoreH, N: 0, Src: bam.IntV(1)},
		{Op: bam.StoreH, N: 1, Src: bam.IntV(2)},
		{Op: bam.LeaH, Dst: r0 + 2, Tag: word.Lst, N: 0},
		{Op: bam.AddH, N: 2},
		{Op: bam.UnifyCall, Reg1: r0 + 1, Reg2: r0 + 2},
		{Op: bam.Deref, Dst: r0 + 3, Src: bam.Reg(r0)},
		{Op: bam.BrEq, V1: bam.Reg(r0 + 3), Cond: ic.CondNe, V2: bam.IntV(2), L: 0},
		{Op: bam.HaltI, N: 0},
	}
	if res := runBAM(t, body, 0); res.Status != 0 {
		t.Error("list unification must bind the tail variable")
	}
}

func TestSwitchTagDispatch(t *testing.T) {
	body := []bam.Instr{
		{Op: bam.Move, Dst: r0, Src: bam.IntV(5)},
		{Op: bam.SwitchTag, Reg1: r0, LVar: 1, LInt: 2, LAtm: 1, LLst: 1, LStr: 1},
		{Op: bam.Lbl, L: 1},
		{Op: bam.HaltI, N: 1},
		{Op: bam.Lbl, L: 2},
		{Op: bam.HaltI, N: 0},
	}
	if res := runBAM(t, body, 2); res.Status != 0 {
		t.Error("tag switch must dispatch int to LInt")
	}
}

func TestEntriesRecorded(t *testing.T) {
	prog := translate(t, []bam.Instr{
		{Op: bam.Try, L: 1, N: 0},
		{Op: bam.FailI},
		{Op: bam.Lbl, L: 1},
		{Op: bam.Trust},
		{Op: bam.HaltI, N: 0},
	}, 1)
	// Entry 0, fail pc, $unify, main/0 and the retry label must all be
	// indirect entries.
	if !prog.Entries[prog.FailPC] || !prog.Entries[prog.Procs["main/0"]] {
		t.Error("core entries missing")
	}
	found := false
	for pc := range prog.Entries {
		if pc != 0 && pc != prog.FailPC && pc != prog.Procs["main/0"] &&
			pc != prog.Procs["$unify"] {
			found = true
		}
	}
	if !found {
		t.Error("retry address not recorded as an entry")
	}
}

func TestUndefinedProcError(t *testing.T) {
	code := []bam.Instr{
		{Op: bam.Proc, Name: "main", Arity: 0},
		{Op: bam.Call, Name: "ghost", Arity: 3},
	}
	u := &bam.Unit{Code: code, NumLabels: 1, NextTemp: ic.FirstTemp}
	if _, err := Translate(u, term.NewTable()); err == nil ||
		!strings.Contains(err.Error(), "ghost") {
		t.Errorf("expected undefined-procedure error, got %v", err)
	}
}

func TestUndefinedLabelError(t *testing.T) {
	code := []bam.Instr{
		{Op: bam.Proc, Name: "main", Arity: 0},
		{Op: bam.Jump, L: 9},
	}
	u := &bam.Unit{Code: code, NumLabels: 10, NextTemp: ic.FirstTemp}
	if _, err := Translate(u, term.NewTable()); err == nil {
		t.Error("expected undefined-label error")
	}
}
