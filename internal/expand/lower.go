package expand

import (
	"fmt"

	"symbol/internal/bam"
	"symbol/internal/ic"
	"symbol/internal/word"
)

// lower translates one BAM instruction into ICIs.
func (a *asm) lower(in *bam.Instr) error {
	switch in.Op {
	case bam.Nop:
		return nil

	case bam.Proc:
		a.proc(fmt.Sprintf("%s/%d", in.Name, in.Arity))
		return nil

	case bam.Lbl:
		a.label(in.L)
		return nil

	case bam.Jump:
		a.branch(ic.Inst{Op: ic.Jmp}, in.L)
		return nil

	case bam.Call:
		a.branchProc(ic.Inst{Op: ic.Jsr, D: ic.RegCP}, fmt.Sprintf("%s/%d", in.Name, in.Arity))
		return nil

	case bam.Exec:
		a.branchProc(ic.Inst{Op: ic.Jmp}, fmt.Sprintf("%s/%d", in.Name, in.Arity))
		return nil

	case bam.Ret:
		a.emit(ic.Inst{Op: ic.JmpR, A: ic.RegCP})
		return nil

	case bam.FailI:
		a.emit(ic.Inst{Op: ic.Jmp, Target: a.failPC})
		return nil

	case bam.HaltI:
		a.emit(ic.Inst{Op: ic.Halt, Imm: in.N})
		return nil

	case bam.Try:
		// nb = B + cpArgs + savedN(B); fill the new frame; B = nb. The
		// environment barrier is raised to the current env-stack top so
		// that allocate cannot reuse frames this choice point may re-enter.
		tn := a.temp()
		a.emit(ic.Inst{Op: ic.Ld, D: tn, A: ic.RegB, Imm: cpN, Reg: ic.RegionCP})
		t1 := a.temp()
		a.emit(ic.Inst{Op: ic.Add, D: t1, A: ic.RegB, HasImm: true, Imm: cpArgs})
		nb := a.temp()
		a.emit(ic.Inst{Op: ic.Add, D: nb, A: t1, B: tn})
		a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpPrevB, B: ic.RegB, Reg: ic.RegionCP})
		ra := a.temp()
		a.moviLabel(ra, in.L)
		a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpRetry, B: ra, Reg: ic.RegionCP})
		a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpH, B: ic.RegH, Reg: ic.RegionCP})
		a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpTR, B: ic.RegTR, Reg: ic.RegionCP})
		a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpE, B: ic.RegE, Reg: ic.RegionCP})
		a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpESP, B: ic.RegESP, Reg: ic.RegionCP})
		// EB = max(EB, ESP), saved in the frame.
		brSkip := a.emit(ic.Inst{Op: ic.BrCmp, A: ic.RegESP, Cond: ic.CondLe, B: ic.RegEB})
		a.emit(ic.Inst{Op: ic.Mov, D: ic.RegEB, A: ic.RegESP})
		a.code[brSkip].Target = a.here()
		a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpEB, B: ic.RegEB, Reg: ic.RegionCP})
		a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpCP, B: ic.RegCP, Reg: ic.RegionCP})
		cnt := a.temp()
		a.emit(ic.Inst{Op: ic.MovI, D: cnt, Word: word.MakeInt(in.N)})
		a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpN, B: cnt, Reg: ic.RegionCP})
		for i := int64(0); i < in.N; i++ {
			a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpArgs + i, B: ic.ArgReg(int(i)), Reg: ic.RegionCP})
		}
		// The commit point: only once B advances is the (fully written)
		// frame live, so this Mov carries the choice-point-push mark.
		a.emit(ic.Inst{Op: ic.Mov, D: ic.RegB, A: nb, Mark: ic.MarkCPPush})
		return nil

	case bam.Retry:
		ra := a.temp()
		a.moviLabel(ra, in.L)
		a.emit(ic.Inst{Op: ic.St, A: ic.RegB, Imm: cpRetry, B: ra, Reg: ic.RegionCP})
		return nil

	case bam.Trust:
		a.emit(ic.Inst{Op: ic.Ld, D: ic.RegB, A: ic.RegB, Imm: cpPrevB, Reg: ic.RegionCP, Mark: ic.MarkCPPop})
		// The popped frame no longer protects environments: the barrier
		// drops to the one recorded by the new top choice point.
		a.emit(ic.Inst{Op: ic.Ld, D: ic.RegEB, A: ic.RegB, Imm: cpEB, Reg: ic.RegionCP})
		return nil

	case bam.RestoreArgs:
		for i := int64(0); i < in.N; i++ {
			a.emit(ic.Inst{Op: ic.Ld, D: ic.ArgReg(int(i)), A: ic.RegB, Imm: cpArgs + i, Reg: ic.RegionCP})
		}
		return nil

	case bam.Allocate:
		// ESP = max(ESP, EB): frames below the barrier may be re-entered by
		// a live choice point (the WAM's max(E,B) rule on a separate stack).
		brOK := a.emit(ic.Inst{Op: ic.BrCmp, A: ic.RegESP, Cond: ic.CondGe, B: ic.RegEB})
		a.emit(ic.Inst{Op: ic.Mov, D: ic.RegESP, A: ic.RegEB})
		a.code[brOK].Target = a.here()
		a.emit(ic.Inst{Op: ic.St, A: ic.RegESP, Imm: envCE, B: ic.RegE, Reg: ic.RegionEnv})
		a.emit(ic.Inst{Op: ic.St, A: ic.RegESP, Imm: envCP, B: ic.RegCP, Reg: ic.RegionEnv})
		a.emit(ic.Inst{Op: ic.Mov, D: ic.RegE, A: ic.RegESP})
		a.emit(ic.Inst{Op: ic.Add, D: ic.RegESP, A: ic.RegESP, HasImm: true, Imm: envY + in.N})
		return nil

	case bam.Deallocate:
		a.emit(ic.Inst{Op: ic.Mov, D: ic.RegESP, A: ic.RegE})
		a.emit(ic.Inst{Op: ic.Ld, D: ic.RegCP, A: ic.RegE, Imm: envCP, Reg: ic.RegionEnv})
		a.emit(ic.Inst{Op: ic.Ld, D: ic.RegE, A: ic.RegE, Imm: envCE, Reg: ic.RegionEnv})
		return nil

	case bam.GetY:
		a.emit(ic.Inst{Op: ic.Ld, D: in.Dst, A: ic.RegE, Imm: envY + in.N, Reg: ic.RegionEnv})
		return nil

	case bam.PutY:
		src := a.val(in.Src)
		a.emit(ic.Inst{Op: ic.St, A: ic.RegE, Imm: envY + in.N, B: src, Reg: ic.RegionEnv})
		return nil

	case bam.SaveB:
		a.emit(ic.Inst{Op: ic.Mov, D: in.Dst, A: ic.RegB})
		return nil

	case bam.CutTo:
		a.emit(ic.Inst{Op: ic.Mov, D: ic.RegB, A: a.val(in.Src)})
		a.emit(ic.Inst{Op: ic.Ld, D: ic.RegEB, A: ic.RegB, Imm: cpEB, Reg: ic.RegionCP})
		return nil

	case bam.Move:
		if in.Src.K == bam.VReg {
			a.emit(ic.Inst{Op: ic.Mov, D: in.Dst, A: in.Src.R})
		} else {
			a.emit(ic.Inst{Op: ic.MovI, D: in.Dst, Word: a.immWord(in.Src)})
		}
		return nil

	case bam.LoadM:
		a.emit(ic.Inst{Op: ic.Ld, D: in.Dst, A: in.Reg1, Imm: in.N, Reg: ic.RegionHeap})
		return nil

	case bam.StoreM:
		src := a.val(in.Src)
		a.emit(ic.Inst{Op: ic.St, A: in.Reg1, Imm: in.N, B: src, Reg: ic.RegionHeap})
		return nil

	case bam.StoreH:
		src := a.val(in.Src)
		a.emit(ic.Inst{Op: ic.St, A: ic.RegH, Imm: in.N, B: src, Reg: ic.RegionHeap})
		return nil

	case bam.AddH:
		a.emit(ic.Inst{Op: ic.Add, D: ic.RegH, A: ic.RegH, HasImm: true, Imm: in.N})
		return nil

	case bam.LeaH:
		a.emit(ic.Inst{Op: ic.Lea, D: in.Dst, A: ic.RegH, Imm: in.N, Tag: in.Tag})
		return nil

	case bam.MkTagI:
		a.emit(ic.Inst{Op: ic.MkTag, D: in.Dst, A: in.Reg1, Tag: in.Tag})
		return nil

	case bam.Deref:
		if in.Src.K != bam.VReg {
			return fmt.Errorf("expand: deref of immediate")
		}
		d := in.Dst
		a.emit(ic.Inst{Op: ic.Mov, D: d, A: in.Src.R})
		t := a.temp()
		top := a.here()
		brOut := a.emit(ic.Inst{Op: ic.BrTag, A: d, Cond: ic.CondNe, Tag: word.Ref})
		a.emit(ic.Inst{Op: ic.Ld, D: t, A: d, Imm: 0, Reg: ic.RegionHeap})
		brSelf := a.emit(ic.Inst{Op: ic.BrCmp, A: t, Cond: ic.CondEq, B: d})
		a.emit(ic.Inst{Op: ic.Mov, D: d, A: t})
		a.emit(ic.Inst{Op: ic.Jmp, Target: top})
		a.code[brOut].Target = a.here()
		a.code[brSelf].Target = a.here()
		return nil

	case bam.SwitchTag:
		a.branch(ic.Inst{Op: ic.BrTag, A: in.Reg1, Cond: ic.CondEq, Tag: word.Ref}, in.LVar)
		a.branch(ic.Inst{Op: ic.BrTag, A: in.Reg1, Cond: ic.CondEq, Tag: word.Int}, in.LInt)
		a.branch(ic.Inst{Op: ic.BrTag, A: in.Reg1, Cond: ic.CondEq, Tag: word.Atom}, in.LAtm)
		a.branch(ic.Inst{Op: ic.BrTag, A: in.Reg1, Cond: ic.CondEq, Tag: word.Lst}, in.LLst)
		a.branch(ic.Inst{Op: ic.Jmp}, in.LStr)
		return nil

	case bam.BrTagI:
		a.branch(ic.Inst{Op: ic.BrTag, A: in.Reg1, Cond: in.Cond, Tag: in.Tag}, in.L)
		return nil

	case bam.BrEq:
		v1 := in.V1
		if v1.K != bam.VReg {
			r := a.temp()
			a.emit(ic.Inst{Op: ic.MovI, D: r, Word: a.immWord(v1)})
			v1 = bam.Reg(r)
		}
		inst := ic.Inst{Op: ic.BrCmp, A: v1.R, Cond: in.Cond}
		if in.V2.K == bam.VReg {
			inst.B = in.V2.R
		} else {
			inst.HasImm = true
			switch in.Cond {
			case ic.CondEq, ic.CondNe:
				inst.Word = a.immWord(in.V2) // full-word comparison
			default:
				if in.V2.K != bam.VInt {
					return fmt.Errorf("expand: ordered compare against non-integer")
				}
				inst.Imm = in.V2.N // value comparison
			}
		}
		a.branch(inst, in.L)
		return nil

	case bam.Bind:
		src := a.val(in.Src)
		a.emit(ic.Inst{Op: ic.St, A: in.Reg1, Imm: 0, B: src, Reg: ic.RegionHeap})
		a.emit(ic.Inst{Op: ic.St, A: ic.RegTR, Imm: 0, B: in.Reg1, Reg: ic.RegionTrail})
		a.emit(ic.Inst{Op: ic.Add, D: ic.RegTR, A: ic.RegTR, HasImm: true, Imm: 1})
		return nil

	case bam.UnifyCall:
		a.emit(ic.Inst{Op: ic.Mov, D: ic.ArgReg(14), A: in.Reg1})
		a.emit(ic.Inst{Op: ic.Mov, D: ic.ArgReg(15), A: in.Reg2})
		a.branchProc(ic.Inst{Op: ic.Jsr, D: ic.RegRV}, "$unify")
		return nil

	case bam.Arith:
		var op ic.Op
		switch in.AOp {
		case bam.AAdd:
			op = ic.Add
		case bam.ASub:
			op = ic.Sub
		case bam.AMul:
			op = ic.Mul
		case bam.ADiv:
			op = ic.Div
		case bam.AMod:
			op = ic.Mod
		case bam.AAnd:
			op = ic.And
		case bam.AOr:
			op = ic.Or
		case bam.AXor:
			op = ic.Xor
		case bam.AShl:
			op = ic.Shl
		case bam.AShr:
			op = ic.Shr
		}
		v1 := in.V1
		if v1.K != bam.VReg {
			r := a.temp()
			a.emit(ic.Inst{Op: ic.MovI, D: r, Word: a.immWord(v1)})
			v1 = bam.Reg(r)
		}
		inst := ic.Inst{Op: op, D: in.Dst, A: v1.R}
		if in.V2.K == bam.VReg {
			inst.B = in.V2.R
		} else {
			if in.V2.K != bam.VInt {
				return fmt.Errorf("expand: arithmetic with non-integer immediate")
			}
			inst.HasImm = true
			inst.Imm = in.V2.N
		}
		a.emit(inst)
		return nil

	case bam.Sys:
		a.emit(ic.Inst{Op: ic.SysOp, Sys: in.Sys, A: in.Reg1, B: in.Reg2})
		return nil

	case bam.RaiseFault:
		// The machine redirects to $throwunwind (catchable faults) or stops
		// with a typed error; the jump keeps the block well-formed for the
		// static CFG, which requires every block to end in control flow.
		a.emit(ic.Inst{Op: ic.SysOp, Sys: ic.SysFault, A: ic.None, B: ic.None, Imm: in.N})
		a.emit(ic.Inst{Op: ic.Jmp, Target: a.failPC})
		return nil
	}
	return fmt.Errorf("expand: unknown BAM op %d", in.Op)
}
