package expand

import (
	"symbol/internal/ic"
	"symbol/internal/word"
)

// This file assembles the exception runtime: throw/1, the choice-point
// unwind loop, and the catch/3 machinery. The design is choice-point
// delimited: catch/3 pushes an ordinary choice point whose retry address
// is the shared handler entry ($catchh); throwing walks the B chain until
// it finds a frame whose retry address *is* that handler, then delivers
// through the ordinary $fail routine, which already restores H, unwinds
// the trail, and restores E/ESP/EB/CP from the frame. The ball itself is
// copied into the dedicated ball memory area before the unwind so heap
// restoration cannot destroy it; machine-level resource faults write the
// same area directly and enter the same unwind loop, which is what makes
// resource_error(...) balls catchable identically on both executors.

// pushFrame emits the standard choice-point push (the same sequence the
// BAM Try lowering uses) with the retry address taken from proc key and
// the first n argument registers saved.
func (a *asm) pushFrame(retryProc string, n int64) {
	tn := a.temp()
	a.emit(ic.Inst{Op: ic.Ld, D: tn, A: ic.RegB, Imm: cpN, Reg: ic.RegionCP})
	t1 := a.temp()
	a.emit(ic.Inst{Op: ic.Add, D: t1, A: ic.RegB, HasImm: true, Imm: cpArgs})
	nb := a.temp()
	a.emit(ic.Inst{Op: ic.Add, D: nb, A: t1, B: tn})
	a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpPrevB, B: ic.RegB, Reg: ic.RegionCP})
	ra := a.temp()
	a.moviProc(ra, retryProc)
	a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpRetry, B: ra, Reg: ic.RegionCP})
	a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpH, B: ic.RegH, Reg: ic.RegionCP})
	a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpTR, B: ic.RegTR, Reg: ic.RegionCP})
	a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpE, B: ic.RegE, Reg: ic.RegionCP})
	a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpESP, B: ic.RegESP, Reg: ic.RegionCP})
	brSkip := a.emit(ic.Inst{Op: ic.BrCmp, A: ic.RegESP, Cond: ic.CondLe, B: ic.RegEB})
	a.emit(ic.Inst{Op: ic.Mov, D: ic.RegEB, A: ic.RegESP})
	a.code[brSkip].Target = a.here()
	a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpEB, B: ic.RegEB, Reg: ic.RegionCP})
	a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpCP, B: ic.RegCP, Reg: ic.RegionCP})
	cnt := a.temp()
	a.emit(ic.Inst{Op: ic.MovI, D: cnt, Word: word.MakeInt(n)})
	a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpN, B: cnt, Reg: ic.RegionCP})
	for i := int64(0); i < n; i++ {
		a.emit(ic.Inst{Op: ic.St, A: nb, Imm: cpArgs + i, B: ic.ArgReg(int(i)), Reg: ic.RegionCP})
	}
	a.emit(ic.Inst{Op: ic.Mov, D: ic.RegB, A: nb, Mark: ic.MarkCPPush})
}

// popFrame emits the Trust sequence: drop the top choice point, keeping
// trail and heap as they are.
func (a *asm) popFrame() {
	a.emit(ic.Inst{Op: ic.Ld, D: ic.RegB, A: ic.RegB, Imm: cpPrevB, Reg: ic.RegionCP, Mark: ic.MarkCPPop})
	a.emit(ic.Inst{Op: ic.Ld, D: ic.RegEB, A: ic.RegB, Imm: cpEB, Reg: ic.RegionCP})
}

// throwRoutines assembles $throw/1 and the shared $throwunwind loop.
// When no catch/3 appears in the program the handler comparison is
// omitted: every throw (and every converted resource fault) unwinds to
// the sentinel and halts with the uncaught status.
func (a *asm) throwRoutines(needCatch bool) {
	// $throw/1: copy the ball out of the heap and arm the flag, then fall
	// through into the unwind loop.
	a.proc("$throw/1")
	a.emit(ic.Inst{Op: ic.SysOp, Sys: ic.SysBallPut, A: ic.ArgReg(0), B: ic.None})

	a.throwPC = a.here()
	a.name("$throwunwind")
	var hw ic.Reg
	if needCatch {
		hw = a.temp()
		a.moviProc(hw, "$catchh")
	}
	loop := a.here()
	// Below (or at) the sentinel frame: nothing can catch. The ordered
	// compare also stops the walk if a partially written frame ever left
	// a garbage link.
	brUncaught := a.emit(ic.Inst{Op: ic.BrCmp, A: ic.RegB, Cond: ic.CondLe, HasImm: true, Imm: ic.CPBase})
	if needCatch {
		r := a.temp()
		a.emit(ic.Inst{Op: ic.Ld, D: r, A: ic.RegB, Imm: cpRetry, Reg: ic.RegionCP})
		brFound := a.emit(ic.Inst{Op: ic.BrCmp, A: r, Cond: ic.CondEq, B: hw})
		a.emit(ic.Inst{Op: ic.Ld, D: ic.RegB, A: ic.RegB, Imm: cpPrevB, Reg: ic.RegionCP})
		a.emit(ic.Inst{Op: ic.Jmp, Target: loop})
		// Catch frame found: $fail restores machine state from it and
		// jumps to its retry address, the handler.
		a.code[brFound].Target = a.here()
		a.emit(ic.Inst{Op: ic.Jmp, Target: a.failPC})
	} else {
		a.emit(ic.Inst{Op: ic.Ld, D: ic.RegB, A: ic.RegB, Imm: cpPrevB, Reg: ic.RegionCP})
		a.emit(ic.Inst{Op: ic.Jmp, Target: loop})
	}
	a.code[brUncaught].Target = a.here()
	a.emit(ic.Inst{Op: ic.Halt, Imm: 2})
}

// catchRoutine assembles $catch/3 (Goal in A0, Catcher in A1, Recovery in
// A2) plus its handler and rethrow continuations.
func (a *asm) catchRoutine() {
	a.proc("$catch/3")
	// Allocate a 0-slot environment so CP survives the metacall.
	brOK := a.emit(ic.Inst{Op: ic.BrCmp, A: ic.RegESP, Cond: ic.CondGe, B: ic.RegEB})
	a.emit(ic.Inst{Op: ic.Mov, D: ic.RegESP, A: ic.RegEB})
	a.code[brOK].Target = a.here()
	a.emit(ic.Inst{Op: ic.St, A: ic.RegESP, Imm: envCE, B: ic.RegE, Reg: ic.RegionEnv})
	a.emit(ic.Inst{Op: ic.St, A: ic.RegESP, Imm: envCP, B: ic.RegCP, Reg: ic.RegionEnv})
	a.emit(ic.Inst{Op: ic.Mov, D: ic.RegE, A: ic.RegESP})
	a.emit(ic.Inst{Op: ic.Add, D: ic.RegESP, A: ic.RegESP, HasImm: true, Imm: envY})
	// The catch choice point: its retry address marks it for the unwind.
	a.pushFrame("$catchh", 3)
	a.branchProc(ic.Inst{Op: ic.Jsr, D: ic.RegCP}, "$meta/1")
	// Goal succeeded: return. The catch frame stays live as the barrier
	// for Goal's remaining alternatives (choice-point-delimited catch).
	a.emit(ic.Inst{Op: ic.Mov, D: ic.RegESP, A: ic.RegE})
	a.emit(ic.Inst{Op: ic.Ld, D: ic.RegCP, A: ic.RegE, Imm: envCP, Reg: ic.RegionEnv})
	a.emit(ic.Inst{Op: ic.Ld, D: ic.RegE, A: ic.RegE, Imm: envCE, Reg: ic.RegionEnv})
	a.emit(ic.Inst{Op: ic.JmpR, A: ic.RegCP})

	// Handler: entered from $fail with machine state restored from the
	// catch frame (B is that frame). Distinguish a throw in flight from
	// ordinary exhaustion of Goal's alternatives by the ball flag.
	a.proc("$catchh")
	tb := a.temp()
	a.emit(ic.Inst{Op: ic.MovI, D: tb, Word: word.MakeRef(ic.BallBase)})
	f := a.temp()
	a.emit(ic.Inst{Op: ic.Ld, D: f, A: tb, Imm: 0, Reg: ic.RegionBall})
	brThrow := a.emit(ic.Inst{Op: ic.BrCmp, A: f, Cond: ic.CondEq, HasImm: true, Word: word.MakeInt(1)})
	// No ball: catch/3 simply fails like its goal.
	a.popFrame()
	a.emit(ic.Inst{Op: ic.Jmp, Target: a.failPC})
	a.code[brThrow].Target = a.here()
	// Ball pending: disarm it, reload Catcher/Recovery, pop the frame.
	z := a.temp()
	a.emit(ic.Inst{Op: ic.MovI, D: z, Word: word.MakeInt(0)})
	a.emit(ic.Inst{Op: ic.St, A: tb, Imm: 0, B: z, Reg: ic.RegionBall})
	a.emit(ic.Inst{Op: ic.Ld, D: ic.ArgReg(1), A: ic.RegB, Imm: cpArgs + 1, Reg: ic.RegionCP})
	a.emit(ic.Inst{Op: ic.Ld, D: ic.ArgReg(2), A: ic.RegB, Imm: cpArgs + 2, Reg: ic.RegionCP})
	a.popFrame()
	// Unify ball and Catcher under a rethrow choice point, so a mismatch
	// resumes the unwind instead of failing into Goal's caller.
	a.pushFrame("$rethrow", 0)
	ball := a.temp()
	a.emit(ic.Inst{Op: ic.Ld, D: ball, A: tb, Imm: 1, Reg: ic.RegionBall})
	a.emit(ic.Inst{Op: ic.Mov, D: ic.ArgReg(14), A: ball})
	a.emit(ic.Inst{Op: ic.Mov, D: ic.ArgReg(15), A: ic.ArgReg(1)})
	a.branchProc(ic.Inst{Op: ic.Jsr, D: ic.RegRV}, "$unify")
	// Catcher matched: drop the rethrow frame (keeping the bindings) and
	// tail-call Recovery through the dispatcher.
	a.popFrame()
	a.emit(ic.Inst{Op: ic.Mov, D: ic.ArgReg(0), A: ic.ArgReg(2)})
	a.emit(ic.Inst{Op: ic.Mov, D: ic.RegESP, A: ic.RegE})
	a.emit(ic.Inst{Op: ic.Ld, D: ic.RegCP, A: ic.RegE, Imm: envCP, Reg: ic.RegionEnv})
	a.emit(ic.Inst{Op: ic.Ld, D: ic.RegE, A: ic.RegE, Imm: envCE, Reg: ic.RegionEnv})
	a.branchProc(ic.Inst{Op: ic.Jmp}, "$meta/1")

	// Rethrow: the catcher did not match. The ball data is still intact
	// in the ball area (the failed unification's bindings were untrailed
	// by $fail); re-arm the flag and continue unwinding outward.
	a.proc("$rethrow")
	a.popFrame()
	tb2 := a.temp()
	a.emit(ic.Inst{Op: ic.MovI, D: tb2, Word: word.MakeRef(ic.BallBase)})
	one := a.temp()
	a.emit(ic.Inst{Op: ic.MovI, D: one, Word: word.MakeInt(1)})
	a.emit(ic.Inst{Op: ic.St, A: tb2, Imm: 0, B: one, Reg: ic.RegionBall})
	a.emit(ic.Inst{Op: ic.Jmp, Target: a.throwPC})
}
