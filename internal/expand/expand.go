// Package expand translates BAM code into Intermediate Code Instructions
// (paper §3.1): every BAM instruction becomes a short, fixed sequence of
// primitive ICIs, and the runtime routines the BAM model relies on (general
// unification over a push-down list, and the fail/backtrack routine that
// unwinds the trail and restores machine state from the current choice
// point) are assembled from the same primitives — as the paper notes, "BAM
// instructions that require sequences (e.g. dereference, unification) are
// implemented via primitive operations".
//
// The translator performs no optimization beyond the variable renaming that
// the front end already guarantees (fresh temporaries everywhere); all
// compaction is delegated to the back end (internal/core).
package expand

import (
	"fmt"

	"symbol/internal/bam"
	"symbol/internal/ic"
	"symbol/internal/term"
	"symbol/internal/word"
)

// Choice-point frame layout (word offsets from the frame base held in B).
// cpEB holds the environment barrier in force while this choice point is
// live: the maximum of the creating frame's barrier and the env-stack top
// at creation. Frames below it may be re-entered by this choice point's
// retry path and must not be reused by allocate.
const (
	cpPrevB = 0
	cpRetry = 1
	cpH     = 2
	cpTR    = 3
	cpE     = 4
	cpESP   = 5
	cpEB    = 6
	cpCP    = 7
	cpN     = 8
	cpArgs  = 9
)

// Environment frame layout (offsets from E).
const (
	envCE = 0
	envCP = 1
	envY  = 2
)

type fixKind uint8

const (
	fixBranch fixKind = iota // patch Inst.Target
	fixWord                  // patch Inst.Word with a Code-tagged address
)

type fixup struct {
	pc   int
	kind fixKind
	lbl  int    // label id, or
	proc string // procedure key when lbl < 0
}

// asm accumulates IC instructions with label fix-ups.
type asm struct {
	code    []ic.Inst
	atoms   *term.Table
	labels  map[int]int    // BAM label id → pc
	procs   map[string]int // "name/arity" → pc
	names   map[int]string
	fixes   []fixup
	next    ic.Reg
	failPC  int
	throwPC int // entry of $throwunwind
}

func (a *asm) here() int { return len(a.code) }

func (a *asm) temp() ic.Reg {
	r := a.next
	a.next++
	return r
}

func (a *asm) emit(in ic.Inst) int {
	a.code = append(a.code, in)
	return len(a.code) - 1
}

func (a *asm) label(id int) {
	a.labels[id] = a.here()
}

func (a *asm) proc(key string) {
	a.procs[key] = a.here()
	a.names[a.here()] = key
}

func (a *asm) name(s string) { a.names[a.here()] = s }

// branch emits a control ICI whose Target is label id (0 = fail routine).
func (a *asm) branch(in ic.Inst, id int) {
	pc := a.emit(in)
	if id == 0 {
		a.code[pc].Target = -1 // patched to failPC at the end
		a.fixes = append(a.fixes, fixup{pc: pc, kind: fixBranch, lbl: 0})
		return
	}
	a.fixes = append(a.fixes, fixup{pc: pc, kind: fixBranch, lbl: id})
}

func (a *asm) branchProc(in ic.Inst, key string) {
	pc := a.emit(in)
	a.fixes = append(a.fixes, fixup{pc: pc, kind: fixBranch, lbl: -1, proc: key})
}

// moviLabel emits a MovI whose Word will be the Code address of label id.
func (a *asm) moviLabel(d ic.Reg, id int) {
	pc := a.emit(ic.Inst{Op: ic.MovI, D: d})
	a.fixes = append(a.fixes, fixup{pc: pc, kind: fixWord, lbl: id})
}

// moviProc emits a MovI whose Word will be the Code address of proc key.
func (a *asm) moviProc(d ic.Reg, key string) {
	pc := a.emit(ic.Inst{Op: ic.MovI, D: d})
	a.fixes = append(a.fixes, fixup{pc: pc, kind: fixWord, lbl: -1, proc: key})
}

func (a *asm) resolve() error {
	for _, f := range a.fixes {
		var target int
		switch {
		case f.lbl == -1:
			pc, ok := a.procs[f.proc]
			if !ok {
				return fmt.Errorf("expand: undefined procedure %s", f.proc)
			}
			target = pc
		case f.lbl == 0:
			target = a.failPC
		default:
			pc, ok := a.labels[f.lbl]
			if !ok {
				return fmt.Errorf("expand: undefined label L%d", f.lbl)
			}
			target = pc
		}
		switch f.kind {
		case fixBranch:
			a.code[f.pc].Target = target
		case fixWord:
			a.code[f.pc].Word = word.Make(word.Code, uint64(target))
		}
	}
	return nil
}

// val materializes a BAM operand into a register (immediates via MovI).
func (a *asm) val(v bam.Val) ic.Reg {
	switch v.K {
	case bam.VReg:
		return v.R
	default:
		t := a.temp()
		a.emit(ic.Inst{Op: ic.MovI, D: t, Word: a.immWord(v)})
		return t
	}
}

// immWord encodes an immediate operand as a tagged word.
func (a *asm) immWord(v bam.Val) word.W {
	switch v.K {
	case bam.VAtom:
		return word.Make(word.Atom, uint64(a.atoms.Intern(v.S)))
	case bam.VInt:
		return word.MakeInt(v.N)
	case bam.VFun:
		return word.MakeFun(a.atoms.Intern(v.S), v.Arity)
	}
	panic("expand: not an immediate")
}

// Translate lowers a BAM unit into an executable IC program.
func Translate(u *bam.Unit, atoms *term.Table) (*ic.Program, error) {
	a := &asm{
		atoms:  atoms,
		labels: map[int]int{},
		procs:  map[string]int{},
		names:  map[int]string{},
		next:   u.NextTemp,
	}
	// Atoms the machine needs when converting resource faults to balls.
	for _, s := range []string{"resource_error", "heap", "env", "cp", "trail", "pdl", "zero_divisor"} {
		atoms.Intern(s)
	}
	// The catch runtime routine is emitted only when the program can reach
	// it ($catch/3 references $meta/1, which only exists when call/1 or
	// catch/3 was compiled).
	needCatch := false
	for i := range u.Code {
		in := &u.Code[i]
		if (in.Op == bam.Call || in.Op == bam.Exec) && in.Name == "$catch" && in.Arity == 3 {
			needCatch = true
			break
		}
	}
	a.entryStub()
	a.failRoutine()
	a.unifyRoutine()
	a.throwRoutines(needCatch)
	if needCatch {
		a.catchRoutine()
	}
	for i := range u.Code {
		if err := a.lower(&u.Code[i]); err != nil {
			return nil, err
		}
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	entries := map[int]bool{0: true, a.failPC: true, a.throwPC: true}
	for _, pc := range a.procs {
		entries[pc] = true
	}
	for _, f := range a.fixes {
		if f.kind == fixWord {
			entries[int(a.code[f.pc].Word.Val())] = true
		}
	}
	for pc := range a.code {
		if a.code[pc].Op == ic.Jsr && pc+1 < len(a.code) {
			entries[pc+1] = true
		}
	}
	return &ic.Program{
		Code:    a.code,
		Atoms:   atoms,
		Entry:   0,
		FailPC:  a.failPC,
		Procs:   a.procs,
		Names:   a.names,
		Entries: entries,
		ThrowPC: a.throwPC,
	}, nil
}

// entryStub initializes the machine registers, the choice-point sentinel,
// calls main/0 and halts with the success status.
func (a *asm) entryStub() {
	a.name("$start")
	mi := func(d ic.Reg, w word.W) { a.emit(ic.Inst{Op: ic.MovI, D: d, Word: w}) }
	mi(ic.RegH, word.MakeRef(ic.HeapBase))
	mi(ic.RegESP, word.MakeRef(ic.EnvBase))
	mi(ic.RegE, word.MakeRef(ic.EnvBase))
	mi(ic.RegEB, word.MakeRef(ic.EnvBase))
	mi(ic.RegB, word.MakeRef(ic.CPBase))
	mi(ic.RegTR, word.MakeRef(ic.TrailBase))
	t := a.temp()
	mi(t, word.MakeInt(0))
	a.emit(ic.Inst{Op: ic.St, A: ic.RegB, Imm: cpN, B: t, Reg: ic.RegionCP})
	a.emit(ic.Inst{Op: ic.St, A: ic.RegB, Imm: cpEB, B: ic.RegEB, Reg: ic.RegionCP})
	a.branchProc(ic.Inst{Op: ic.Jsr, D: ic.RegCP}, "main/0")
	a.emit(ic.Inst{Op: ic.Halt, Imm: 0})
}

// failRoutine is the shared backtrack code: restore H, unwind the trail,
// restore E/ESP/CP and jump to the retry address of the current choice
// point, or halt(1) when the choice-point stack is empty.
func (a *asm) failRoutine() {
	a.failPC = a.here()
	a.name("$fail")
	bottom := word.MakeRef(ic.CPBase)
	// brcmp b eq <bottom>, halt1  — patched with a local forward offset.
	brHalt := a.emit(ic.Inst{Op: ic.BrCmp, A: ic.RegB, Cond: ic.CondEq, HasImm: true, Word: bottom})
	a.emit(ic.Inst{Op: ic.Ld, D: ic.RegH, A: ic.RegB, Imm: cpH, Reg: ic.RegionCP})
	ttr := a.temp()
	a.emit(ic.Inst{Op: ic.Ld, D: ttr, A: ic.RegB, Imm: cpTR, Reg: ic.RegionCP})
	loop := a.here()
	brDone := a.emit(ic.Inst{Op: ic.BrCmp, A: ic.RegTR, Cond: ic.CondLe, B: ttr})
	a.emit(ic.Inst{Op: ic.Sub, D: ic.RegTR, A: ic.RegTR, HasImm: true, Imm: 1})
	v := a.temp()
	a.emit(ic.Inst{Op: ic.Ld, D: v, A: ic.RegTR, Imm: 0, Reg: ic.RegionTrail, Mark: ic.MarkTrailUndo})
	a.emit(ic.Inst{Op: ic.St, A: v, Imm: 0, B: v, Reg: ic.RegionHeap})
	a.emit(ic.Inst{Op: ic.Jmp, Target: loop})
	a.code[brDone].Target = a.here()
	a.emit(ic.Inst{Op: ic.Ld, D: ic.RegE, A: ic.RegB, Imm: cpE, Reg: ic.RegionCP})
	a.emit(ic.Inst{Op: ic.Ld, D: ic.RegESP, A: ic.RegB, Imm: cpESP, Reg: ic.RegionCP})
	a.emit(ic.Inst{Op: ic.Ld, D: ic.RegEB, A: ic.RegB, Imm: cpEB, Reg: ic.RegionCP})
	a.emit(ic.Inst{Op: ic.Ld, D: ic.RegCP, A: ic.RegB, Imm: cpCP, Reg: ic.RegionCP})
	ra := a.temp()
	a.emit(ic.Inst{Op: ic.Ld, D: ra, A: ic.RegB, Imm: cpRetry, Reg: ic.RegionCP})
	a.emit(ic.Inst{Op: ic.JmpR, A: ra})
	a.code[brHalt].Target = a.here()
	a.emit(ic.Inst{Op: ic.Halt, Imm: 1})
}

// unifyRoutine is general unification: iterative, with an explicit
// push-down list in the PDL memory region. Arguments arrive in A14/A15, the
// return address in RV; on mismatch it branches straight to $fail.
func (a *asm) unifyRoutine() {
	u0 := ic.ArgReg(14)
	u1 := ic.ArgReg(15)
	p := a.temp()
	a.proc("$unify")

	pdlBottom := word.MakeRef(ic.PDLBase)
	a.emit(ic.Inst{Op: ic.MovI, D: p, Word: word.MakeRef(ic.PDLBase)})

	loop := a.here()
	// Inline dereference of u0 and u1.
	deref := func(u ic.Reg) {
		t := a.temp()
		top := a.here()
		brOut := a.emit(ic.Inst{Op: ic.BrTag, A: u, Cond: ic.CondNe, Tag: word.Ref})
		a.emit(ic.Inst{Op: ic.Ld, D: t, A: u, Imm: 0, Reg: ic.RegionHeap})
		brSelf := a.emit(ic.Inst{Op: ic.BrCmp, A: t, Cond: ic.CondEq, B: u})
		a.emit(ic.Inst{Op: ic.Mov, D: u, A: t})
		a.emit(ic.Inst{Op: ic.Jmp, Target: top})
		a.code[brOut].Target = a.here()
		a.code[brSelf].Target = a.here()
	}
	deref(u0)
	deref(u1)

	var toNext []int // branch pcs patched to the "next pair" label
	var toFail []int
	brN := a.emit(ic.Inst{Op: ic.BrCmp, A: u0, Cond: ic.CondEq, B: u1})
	toNext = append(toNext, brN)

	br0n := a.emit(ic.Inst{Op: ic.BrTag, A: u0, Cond: ic.CondNe, Tag: word.Ref}) // → u0nonref
	// u0 is an unbound ref.
	br1n := a.emit(ic.Inst{Op: ic.BrTag, A: u1, Cond: ic.CondNe, Tag: word.Ref}) // → bind01
	brOlder := a.emit(ic.Inst{Op: ic.BrCmp, A: u0, Cond: ic.CondLt, B: u1})      // → bind10
	// bind01: u0 := u1
	a.code[br1n].Target = a.here()
	a.emit(ic.Inst{Op: ic.St, A: u0, Imm: 0, B: u1, Reg: ic.RegionHeap})
	a.emit(ic.Inst{Op: ic.St, A: ic.RegTR, Imm: 0, B: u0, Reg: ic.RegionTrail})
	a.emit(ic.Inst{Op: ic.Add, D: ic.RegTR, A: ic.RegTR, HasImm: true, Imm: 1})
	toNext = append(toNext, a.emit(ic.Inst{Op: ic.Jmp}))
	// bind10: u1 := u0
	a.code[brOlder].Target = a.here()
	a.emit(ic.Inst{Op: ic.St, A: u1, Imm: 0, B: u0, Reg: ic.RegionHeap})
	a.emit(ic.Inst{Op: ic.St, A: ic.RegTR, Imm: 0, B: u1, Reg: ic.RegionTrail})
	a.emit(ic.Inst{Op: ic.Add, D: ic.RegTR, A: ic.RegTR, HasImm: true, Imm: 1})
	toNext = append(toNext, a.emit(ic.Inst{Op: ic.Jmp}))

	// u0nonref:
	a.code[br0n].Target = a.here()
	brBoth := a.emit(ic.Inst{Op: ic.BrTag, A: u1, Cond: ic.CondNe, Tag: word.Ref})
	// u1 unbound: bind u1 := u0.
	a.emit(ic.Inst{Op: ic.St, A: u1, Imm: 0, B: u0, Reg: ic.RegionHeap})
	a.emit(ic.Inst{Op: ic.St, A: ic.RegTR, Imm: 0, B: u1, Reg: ic.RegionTrail})
	a.emit(ic.Inst{Op: ic.Add, D: ic.RegTR, A: ic.RegTR, HasImm: true, Imm: 1})
	toNext = append(toNext, a.emit(ic.Inst{Op: ic.Jmp}))

	// Both non-ref, words differ.
	a.code[brBoth].Target = a.here()
	brLst := a.emit(ic.Inst{Op: ic.BrTag, A: u0, Cond: ic.CondEq, Tag: word.Lst})
	brStr := a.emit(ic.Inst{Op: ic.BrTag, A: u0, Cond: ic.CondEq, Tag: word.Str})
	toFail = append(toFail, a.emit(ic.Inst{Op: ic.Jmp}))

	// Lists: push tail-cell addresses, continue with heads.
	a.code[brLst].Target = a.here()
	toFail = append(toFail, a.emit(ic.Inst{Op: ic.BrTag, A: u1, Cond: ic.CondNe, Tag: word.Lst}))
	t2 := a.temp()
	t3 := a.temp()
	a.emit(ic.Inst{Op: ic.Add, D: t2, A: u0, HasImm: true, Imm: 1})
	a.emit(ic.Inst{Op: ic.St, A: p, Imm: 0, B: t2, Reg: ic.RegionPDL})
	a.emit(ic.Inst{Op: ic.Add, D: t3, A: u1, HasImm: true, Imm: 1})
	a.emit(ic.Inst{Op: ic.St, A: p, Imm: 1, B: t3, Reg: ic.RegionPDL})
	a.emit(ic.Inst{Op: ic.Add, D: p, A: p, HasImm: true, Imm: 2})
	t4 := a.temp()
	a.emit(ic.Inst{Op: ic.Ld, D: t4, A: u1, Imm: 0, Reg: ic.RegionHeap})
	a.emit(ic.Inst{Op: ic.Ld, D: u0, A: u0, Imm: 0, Reg: ic.RegionHeap})
	a.emit(ic.Inst{Op: ic.Mov, D: u1, A: t4})
	a.emit(ic.Inst{Op: ic.Jmp, Target: loop})

	// Structures: compare functors, push argument pairs arity..2, continue
	// with argument 1.
	a.code[brStr].Target = a.here()
	toFail = append(toFail, a.emit(ic.Inst{Op: ic.BrTag, A: u1, Cond: ic.CondNe, Tag: word.Str}))
	f0 := a.temp()
	f1 := a.temp()
	a.emit(ic.Inst{Op: ic.Ld, D: f0, A: u0, Imm: 0, Reg: ic.RegionHeap})
	a.emit(ic.Inst{Op: ic.Ld, D: f1, A: u1, Imm: 0, Reg: ic.RegionHeap})
	toFail = append(toFail, a.emit(ic.Inst{Op: ic.BrCmp, A: f0, Cond: ic.CondNe, B: f1}))
	n := a.temp()
	a.emit(ic.Inst{Op: ic.And, D: n, A: f0, HasImm: true, Imm: 0xffff})
	i := a.temp()
	a.emit(ic.Inst{Op: ic.Mov, D: i, A: n})
	pushTop := a.here()
	brArgs1 := a.emit(ic.Inst{Op: ic.BrCmp, A: i, Cond: ic.CondLe, HasImm: true, Imm: 1})
	t5 := a.temp()
	t6 := a.temp()
	a.emit(ic.Inst{Op: ic.Add, D: t5, A: u0, B: i})
	a.emit(ic.Inst{Op: ic.St, A: p, Imm: 0, B: t5, Reg: ic.RegionPDL})
	a.emit(ic.Inst{Op: ic.Add, D: t6, A: u1, B: i})
	a.emit(ic.Inst{Op: ic.St, A: p, Imm: 1, B: t6, Reg: ic.RegionPDL})
	a.emit(ic.Inst{Op: ic.Add, D: p, A: p, HasImm: true, Imm: 2})
	a.emit(ic.Inst{Op: ic.Sub, D: i, A: i, HasImm: true, Imm: 1})
	a.emit(ic.Inst{Op: ic.Jmp, Target: pushTop})
	a.code[brArgs1].Target = a.here()
	t7 := a.temp()
	a.emit(ic.Inst{Op: ic.Ld, D: t7, A: u1, Imm: 1, Reg: ic.RegionHeap})
	a.emit(ic.Inst{Op: ic.Ld, D: u0, A: u0, Imm: 1, Reg: ic.RegionHeap})
	a.emit(ic.Inst{Op: ic.Mov, D: u1, A: t7})
	a.emit(ic.Inst{Op: ic.Jmp, Target: loop})

	// next: pop a pair or return.
	next := a.here()
	for _, pc := range toNext {
		a.code[pc].Target = next
	}
	brDone := a.emit(ic.Inst{Op: ic.BrCmp, A: p, Cond: ic.CondEq, HasImm: true, Word: pdlBottom})
	a.emit(ic.Inst{Op: ic.Sub, D: p, A: p, HasImm: true, Imm: 2})
	t8 := a.temp()
	t9 := a.temp()
	a.emit(ic.Inst{Op: ic.Ld, D: t8, A: p, Imm: 0, Reg: ic.RegionPDL})
	a.emit(ic.Inst{Op: ic.Ld, D: u0, A: t8, Imm: 0, Reg: ic.RegionHeap})
	a.emit(ic.Inst{Op: ic.Ld, D: t9, A: p, Imm: 1, Reg: ic.RegionPDL})
	a.emit(ic.Inst{Op: ic.Ld, D: u1, A: t9, Imm: 0, Reg: ic.RegionHeap})
	a.emit(ic.Inst{Op: ic.Jmp, Target: loop})
	a.code[brDone].Target = a.here()
	a.emit(ic.Inst{Op: ic.JmpR, A: ic.RegRV})

	failj := a.here()
	for _, pc := range toFail {
		a.code[pc].Target = failj
	}
	a.emit(ic.Inst{Op: ic.Jmp, Target: a.failPC})
}
