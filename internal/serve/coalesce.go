package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"symbol"
)

// batcher coalesces admitted single-shot queries onto shared engine runs.
// The engine is deterministic — the same program on a fresh pooled state
// under the same budgets computes the same answer — so N requests for the
// same (kb, goal) with the same budget class need ONE run, not N. Admitted
// requests park for a short batching window; the window closes early when
// the batch fills (MaxBatch) or when every admitted request in the server
// is already parked (nothing else is running, so no more company is
// coming), and the window timer is the backstop. One flush executes one
// Engine.RunBatch with one entry per distinct budget class and fans each
// class's result back to its members.
//
// The coalescing contract deliberately excludes paginated queries: a
// Solutions stream is stateful (a suspended machine), so /query?limit=N
// and cursor resumes keep their dedicated runs.
type batcher struct {
	s      *Server
	window time.Duration
	linger time.Duration // quiet-close grace; see submit
	max    int

	mu      sync.Mutex
	pending map[*symbol.Engine]*batch
	parked  int // members currently parked, across every pending batch
}

// batch is the coalescing point of one engine: the members gathered so far
// and the wake channel its flush goroutine waits on.
type batch struct {
	eng       *symbol.Engine
	members   []*batchMember
	once      sync.Once
	quietOnce sync.Once
	wake      chan struct{}
}

// close signals the flush goroutine to stop waiting; idempotent.
func (bt *batch) close() { bt.once.Do(func() { close(bt.wake) }) }

// quiet arms the linger: the batch closes after the grace period unless
// something closes it sooner (filling, the window timer, drain). The
// first quiet signal wins; later ones are no-ops, so the linger is a
// bounded delay from the moment the server first looked idle, not a
// sliding window.
func (bt *batch) quiet(linger time.Duration) {
	bt.quietOnce.Do(func() { time.AfterFunc(linger, bt.close) })
}

// classKey identifies a budget class within a batch: members with equal
// keys pose byte-identical runs (same step/memory budgets, same dispatch
// core, same wall-clock allowance) and share one run's result. The key
// carries the timeout *duration*, not an absolute deadline — members of a
// class were admitted microseconds apart, and the shared run uses one
// deadline computed at flush time.
type classKey struct {
	maxSteps int64
	heap     int64
	env      int64
	cp       int64
	trail    int64
	pdl      int64
	dispatch symbol.Dispatch
	nofuse   bool
	timeout  time.Duration
}

func classOf(opts symbol.RunOptions, timeout time.Duration) classKey {
	return classKey{
		maxSteps: opts.MaxSteps,
		heap:     opts.HeapWords,
		env:      opts.EnvWords,
		cp:       opts.CPWords,
		trail:    opts.TrailWords,
		pdl:      opts.PDLWords,
		dispatch: opts.Dispatch,
		nofuse:   opts.NoFuse,
		timeout:  timeout,
	}
}

// batchMember is one parked request: its context (for per-member
// cancellation), its budget class, and the channel its handler waits on.
type batchMember struct {
	ctx  context.Context
	key  classKey
	opts symbol.RunOptions
	done chan batchOutcome
	sent bool // owned by the executing goroutine
}

type batchOutcome struct {
	res *symbol.Result
	err error
}

func newBatcher(s *Server) *batcher {
	// The linger is a small fraction of the window: long enough for the
	// scheduler to drain pending socket reads into the batch, short enough
	// that a genuinely lone query barely notices it.
	linger := s.cfg.BatchWindow / 8
	if linger < 50*time.Microsecond {
		linger = 50 * time.Microsecond
	}
	if linger > time.Millisecond {
		linger = time.Millisecond
	}
	return &batcher{
		s:       s,
		window:  s.cfg.BatchWindow,
		linger:  linger,
		max:     s.cfg.MaxBatch,
		pending: map[*symbol.Engine]*batch{},
	}
}

// submit parks the request in eng's pending batch (opening one if needed)
// and blocks until the flush delivers its class's result. The caller holds
// an admission slot and a flight registration throughout — parked members
// still count as in flight, which is what bounds a batch by MaxInFlight.
//
// If the member's own context dies first (client disconnect), submit
// answers immediately with ErrCanceled; the shared run keeps serving the
// surviving siblings and aborts on its own once every member of the class
// is gone.
func (b *batcher) submit(ctx context.Context, eng *symbol.Engine, opts symbol.RunOptions, timeout time.Duration) (*symbol.Result, error) {
	m := &batchMember{
		ctx:  ctx,
		key:  classOf(opts, timeout),
		opts: opts,
		done: make(chan batchOutcome, 1),
	}
	b.mu.Lock()
	bt := b.pending[eng]
	if bt == nil {
		bt = &batch{eng: eng, wake: make(chan struct{})}
		b.pending[eng] = bt
		go b.flushAfter(bt)
	}
	bt.members = append(bt.members, m)
	b.parked++
	full := len(bt.members) >= b.max
	// Quiet early close: the admission queue is empty and every admitted
	// request is parked in some batch — nothing inside the server is left
	// running to finish and send company, so waiting out the full window
	// would buy pure latency. But "nothing admitted" is not "nothing
	// coming": under synchronous clients the next requests are often
	// sitting unread in socket buffers, invisible to admission counters
	// until a CPU reads them. So quiet does not close the batch — it arms
	// a short linger; parking this goroutine frees the scheduler to admit
	// whatever the sockets hold, and those requests either fill the batch
	// (closing it) or share the flush when the linger expires. (Parked
	// cursor sessions hold admission slots without parking here, so a
	// suspended stream keeps InFlight above parked and disables the quiet
	// path entirely — the window timer still bounds the wait.)
	var all []*batch
	if !full && b.s.gate.depth() == 0 && b.s.met.InFlight() <= int64(b.parked) {
		all = make([]*batch, 0, len(b.pending))
		for _, p := range b.pending {
			all = append(all, p)
		}
	}
	b.mu.Unlock()

	if full {
		bt.close()
	}
	for _, p := range all {
		p.quiet(b.linger)
	}

	select {
	case out := <-m.done:
		return out.res, out.err
	case <-ctx.Done():
		return nil, symbol.ErrCanceled
	}
}

// flushAfter waits out bt's batching window (or its early close, or a hard
// drain), detaches the batch, and executes it.
func (b *batcher) flushAfter(bt *batch) {
	t := time.NewTimer(b.window)
	defer t.Stop()
	select {
	case <-t.C:
	case <-bt.wake:
	case <-b.s.drainCtx.Done():
	}
	b.mu.Lock()
	delete(b.pending, bt.eng)
	members := bt.members
	b.parked -= len(members)
	b.mu.Unlock()
	b.execute(bt.eng, members)
}

// execute groups the members into budget classes, runs one engine run per
// class via RunBatch, and fans each class's outcome back to its members.
// Every member is answered exactly once, even if this goroutine panics.
func (b *batcher) execute(eng *symbol.Engine, members []*batchMember) {
	if len(members) == 0 {
		return
	}
	order := make([]classKey, 0, 4)
	classes := make(map[classKey][]*batchMember, 4)
	for _, m := range members {
		if _, ok := classes[m.key]; !ok {
			order = append(order, m.key)
		}
		classes[m.key] = append(classes[m.key], m)
	}

	deliver := func(m *batchMember, out batchOutcome) {
		if !m.sent {
			m.sent = true
			m.done <- out
		}
	}
	defer func() {
		if rec := recover(); rec != nil {
			b.s.met.RecordPanic()
			b.s.cfg.Logf("serve: panic executing batch: %v", rec)
			out := batchOutcome{err: errors.New("serve: internal error in batched run")}
			for _, m := range members {
				deliver(m, out)
			}
		}
	}()

	// One run per class. Each class's context cancels only when EVERY
	// member's request context has died — one client disconnecting must not
	// drag down siblings that still want the answer. The wall budget rides
	// in RunOptions.Deadline (flush time + the class's timeout), so a
	// timeout terminates as the typed fault.Deadline the direct path
	// produces.
	now := time.Now()
	runs := make([]symbol.BatchRun, len(order))
	var cleanup []func()
	defer func() {
		for _, f := range cleanup {
			f()
		}
	}()
	for i, k := range order {
		ms := classes[k]
		opts := ms[0].opts
		if k.timeout > 0 {
			opts.Deadline = now.Add(k.timeout)
		}
		cctx, cancel := context.WithCancel(context.Background())
		cleanup = append(cleanup, cancel)
		var gone atomic.Int64
		n := int64(len(ms))
		for _, m := range ms {
			stop := context.AfterFunc(m.ctx, func() {
				if gone.Add(1) == n {
					cancel()
				}
			})
			cleanup = append(cleanup, func() { stop() })
		}
		runs[i] = symbol.BatchRun{Ctx: cctx, Opts: opts}
	}

	// A hard drain aborts the whole batch; members answer 503 through the
	// drain-refined Canceled mapping in writeRunError.
	bctx, bcancel := context.WithCancel(context.Background())
	defer bcancel()
	stopDrain := context.AfterFunc(b.s.drainCtx, bcancel)
	defer stopDrain()

	results := eng.RunBatch(bctx, runs)
	b.s.met.RecordBatch(len(members), len(order))
	for i, k := range order {
		out := batchOutcome{res: results[i].Result, err: results[i].Err}
		for _, m := range classes[k] {
			deliver(m, out)
		}
	}
}
