package serve

import (
	"net/http"

	"symbol/internal/fault"
)

// StatusClientClosed is the non-standard status (nginx's 499) recorded for
// requests whose client went away before the answer existed. Nothing is
// actually delivered; the code keeps the metrics and access-log story
// honest about why the run was cancelled.
const StatusClientClosed = 499

// statusOf maps every fault.Kind to the HTTP status a query-serving front
// end answers with. The table is total over the enumeration — a fault kind
// without an explicit, deliberate mapping is a bug, enforced by
// TestFaultStatusExhaustive — so adding a kind to the taxonomy forces a
// serving decision instead of silently becoming a 500.
var statusOf = [fault.NumKinds]int{
	// A non-fault error after admission is an internal failure.
	fault.None: http.StatusInternalServerError,

	// The query blew a per-tenant memory budget: the request as posed is
	// too expensive, retrying unchanged cannot succeed.
	fault.HeapOverflow:  http.StatusUnprocessableEntity,
	fault.EnvOverflow:   http.StatusUnprocessableEntity,
	fault.CPOverflow:    http.StatusUnprocessableEntity,
	fault.TrailOverflow: http.StatusUnprocessableEntity,
	fault.PDLOverflow:   http.StatusUnprocessableEntity,

	// Step/cycle budgets are the compute analogue of the memory areas.
	fault.StepLimit:  http.StatusUnprocessableEntity,
	fault.CycleLimit: http.StatusUnprocessableEntity,

	// The run hit its wall-clock bound while the server was healthy.
	fault.Deadline: http.StatusGatewayTimeout,

	// Errors raised by the program itself.
	fault.ZeroDivide:    http.StatusUnprocessableEntity,
	fault.UncaughtThrow: http.StatusUnprocessableEntity,

	// A wild pointer or codegen bug inside the engine: genuinely ours.
	fault.InvalidMemory: http.StatusInternalServerError,

	// Cancelled from outside the run. The handler refines this: a drain
	// cancellation answers 503 + Retry-After, a client disconnect is
	// recorded as StatusClientClosed.
	fault.Canceled: StatusClientClosed,
}

// StatusOf returns the HTTP status for a fault kind. Kinds outside the
// enumeration (which cannot arise from the executors) report 500.
func StatusOf(k fault.Kind) int {
	if k < fault.NumKinds {
		return statusOf[k]
	}
	return http.StatusInternalServerError
}
