package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"symbol"
)

// Tenant is a named budget envelope. Every request executes under exactly
// one tenant (the default if the X-Symbol-Tenant header is absent); the
// tenant's fields are ceilings, so a request header can tighten a budget
// for one query but never raise it past what the tenant was provisioned.
// Zero fields defer to the engine defaults.
type Tenant struct {
	Name string `json:"name"`

	// MaxSteps bounds the sequential ICI budget per query.
	MaxSteps int64 `json:"max_steps,omitempty"`
	// MaxConcurrent bounds how many of this tenant's requests may hold
	// admission slots at once (0 = unlimited). Checked before the global
	// admission gate; past it requests shed with 429 tenant_quota. Parked
	// paginated cursors keep counting until their stream finishes.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// Timeout bounds one query's wall clock (also the ceiling for the
	// X-Symbol-Timeout header). Zero falls back to the server's
	// RequestTimeout.
	Timeout time.Duration `json:"timeout,omitempty"`
	// Memory-area ceilings, in words (0 = engine default).
	HeapWords  int64 `json:"heap_words,omitempty"`
	EnvWords   int64 `json:"env_words,omitempty"`
	CPWords    int64 `json:"cp_words,omitempty"`
	TrailWords int64 `json:"trail_words,omitempty"`
	PDLWords   int64 `json:"pdl_words,omitempty"`
}

// Request headers a caller can use to tighten its tenant budgets.
const (
	HeaderTenant   = "X-Symbol-Tenant"
	HeaderMaxSteps = "X-Symbol-Max-Steps"
	HeaderTimeout  = "X-Symbol-Timeout"
)

// badRequestError marks client mistakes detected before admission (bad
// header syntax, unknown tenant); the handler answers 400/403 instead of a
// fault-mapped status.
type badRequestError struct {
	status int
	msg    string
}

func (e *badRequestError) Error() string { return e.msg }

// tenantOf resolves the request's tenant. An unknown name is refused (403)
// rather than silently downgraded to the default envelope: a typo in a
// tenant name must not hand out default budgets.
func (s *Server) tenantOf(r *http.Request) (Tenant, error) {
	name := r.Header.Get(HeaderTenant)
	if name == "" {
		return s.cfg.DefaultTenant, nil
	}
	if t, ok := s.cfg.Tenants[name]; ok {
		t.Name = name
		return t, nil
	}
	return Tenant{}, &badRequestError{
		status: http.StatusForbidden,
		msg:    fmt.Sprintf("unknown tenant %q", name),
	}
}

// clampCeiling merges a requested value into a ceiling: the request may
// tighten (lower) the budget but never exceed the tenant's provision.
func clampCeiling(ceiling, requested int64) int64 {
	if requested <= 0 {
		return ceiling
	}
	if ceiling > 0 && requested > ceiling {
		return ceiling
	}
	return requested
}

// budget computes the run's options and wall-clock timeout: tenant ceilings
// first, per-request headers clamped under them.
func (s *Server) budget(r *http.Request, t Tenant) (symbol.RunOptions, time.Duration, error) {
	opts := symbol.RunOptions{
		MaxSteps:   t.MaxSteps,
		HeapWords:  t.HeapWords,
		EnvWords:   t.EnvWords,
		CPWords:    t.CPWords,
		TrailWords: t.TrailWords,
		PDLWords:   t.PDLWords,
		Dispatch:   s.cfg.Dispatch,
	}
	timeout := t.Timeout
	if timeout <= 0 {
		timeout = s.cfg.RequestTimeout
	}
	if h := r.Header.Get(HeaderMaxSteps); h != "" {
		n, err := strconv.ParseInt(h, 10, 64)
		if err != nil || n <= 0 {
			return opts, 0, &badRequestError{
				status: http.StatusBadRequest,
				msg:    fmt.Sprintf("bad %s %q: want a positive integer", HeaderMaxSteps, h),
			}
		}
		opts.MaxSteps = clampCeiling(t.MaxSteps, n)
	}
	if h := r.Header.Get(HeaderTimeout); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil || d <= 0 {
			return opts, 0, &badRequestError{
				status: http.StatusBadRequest,
				msg:    fmt.Sprintf("bad %s %q: want a positive Go duration", HeaderTimeout, h),
			}
		}
		if d < timeout {
			timeout = d
		}
	}
	return opts, timeout, nil
}
