package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"symbol/internal/fault"
	"symbol/internal/obs"
)

const appKB = `
app([],L,L).
app([H|T],L,[H|R]) :- app(T,L,R).
main :- app([1,2],[3],X), write(X), nl.
`

// loopKB runs until a budget, deadline or cancellation stops it.
const loopKB = `
loop :- loop.
main :- loop.
`

func newTestServer(t *testing.T, cfg Config, kbs ...KB) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg, kbs...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	return s, ts
}

func decode(t *testing.T, r *http.Response) Response {
	t.Helper()
	defer r.Body.Close()
	var resp Response
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp
}

// TestFaultStatusExhaustive is the satellite exhaustiveness check: every
// fault kind must have a deliberate HTTP status and a stable name, so a new
// kind cannot silently become a 500 with a fault(N) placeholder string.
func TestFaultStatusExhaustive(t *testing.T) {
	seen := map[string]fault.Kind{}
	for k := fault.Kind(0); k < fault.NumKinds; k++ {
		status := StatusOf(k)
		if status < 200 || status > 599 {
			t.Errorf("fault kind %d (%s) maps to invalid HTTP status %d", k, k, status)
		}
		if k != fault.None && status == http.StatusInternalServerError && k != fault.InvalidMemory {
			t.Errorf("fault kind %s maps to 500: give it a deliberate status", k)
		}
		name := k.String()
		if strings.HasPrefix(name, "fault(") || name == "" {
			t.Errorf("fault kind %d has no stable string: %q", k, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("fault kinds %d and %d share the string %q", prev, k, name)
		}
		seen[name] = k
	}
	// Past-the-enumeration kinds must not index out of bounds.
	if got := StatusOf(fault.NumKinds + 3); got != http.StatusInternalServerError {
		t.Errorf("out-of-range kind mapped to %d, want 500", got)
	}
}

func TestRunAndQueryEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{}, KB{Name: "app", Source: appKB})

	r, err := http.Get(ts.URL + "/run/app")
	if err != nil {
		t.Fatal(err)
	}
	resp := decode(t, r)
	if r.StatusCode != 200 || !resp.OK || resp.Output != "[1,2,3]\n" {
		t.Fatalf("/run/app: status=%d resp=%+v", r.StatusCode, resp)
	}
	if resp.Steps == 0 || resp.WallNS == 0 {
		t.Errorf("/run/app: missing stats in %+v", resp)
	}

	r, err = http.Post(ts.URL+"/query/app", "text/plain", strings.NewReader("app(X, [3], [1,2,3])"))
	if err != nil {
		t.Fatal(err)
	}
	resp = decode(t, r)
	if r.StatusCode != 200 || !resp.OK || resp.Output != "X = [1,2]\n" {
		t.Fatalf("/query/app: status=%d resp=%+v", r.StatusCode, resp)
	}

	// A failing goal is a clean "no", not an error.
	r, err = http.Post(ts.URL+"/query/app", "text/plain", strings.NewReader("app([9], [9], [1])"))
	if err != nil {
		t.Fatal(err)
	}
	resp = decode(t, r)
	if r.StatusCode != 200 || resp.OK {
		t.Fatalf("failing goal: status=%d resp=%+v", r.StatusCode, resp)
	}

	// A malformed goal is the client's fault.
	r, err = http.Post(ts.URL+"/query/app", "text/plain", strings.NewReader("app(X,"))
	if err != nil {
		t.Fatal(err)
	}
	resp = decode(t, r)
	if r.StatusCode != 400 {
		t.Fatalf("bad goal: status=%d resp=%+v", r.StatusCode, resp)
	}

	// Unknown KB.
	r, err = http.Get(ts.URL + "/run/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != 404 {
		t.Fatalf("/run/nosuch: status=%d", r.StatusCode)
	}
}

func TestQueryOnlyKB(t *testing.T) {
	// A KB without main/0 is query-only: /run explains, /query works.
	kb := "color(red).\ncolor(blue).\n"
	_, ts := newTestServer(t, Config{}, KB{Name: "colors", Source: kb})

	r, err := http.Get(ts.URL + "/run/colors")
	if err != nil {
		t.Fatal(err)
	}
	resp := decode(t, r)
	if r.StatusCode != 400 || !strings.Contains(resp.Error, "not runnable") {
		t.Fatalf("/run on query-only kb: status=%d resp=%+v", r.StatusCode, resp)
	}

	r, err = http.Post(ts.URL+"/query/colors", "text/plain", strings.NewReader("color(X)"))
	if err != nil {
		t.Fatal(err)
	}
	resp = decode(t, r)
	if r.StatusCode != 200 || !resp.OK || resp.Output != "X = red\n" {
		t.Fatalf("/query on query-only kb: status=%d resp=%+v", r.StatusCode, resp)
	}
}

func TestTenantBudgets(t *testing.T) {
	cfg := Config{
		DefaultTenant: Tenant{MaxSteps: 1 << 40},
		Tenants: map[string]Tenant{
			"small": {MaxSteps: 1000},
		},
	}
	_, ts := newTestServer(t, cfg, KB{Name: "loop", Source: loopKB})
	client := ts.Client()

	// The small tenant's step ceiling terminates the loop as a typed 422.
	req, _ := http.NewRequest("GET", ts.URL+"/run/loop", nil)
	req.Header.Set(HeaderTenant, "small")
	r, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp := decode(t, r)
	if r.StatusCode != 422 || resp.Fault != fault.StepLimit.String() {
		t.Fatalf("small tenant: status=%d resp=%+v", r.StatusCode, resp)
	}
	if resp.Tenant != "small" {
		t.Errorf("response tenant = %q", resp.Tenant)
	}

	// A header can tighten the budget under the tenant ceiling...
	req, _ = http.NewRequest("GET", ts.URL+"/run/loop", nil)
	req.Header.Set(HeaderMaxSteps, "2000")
	r, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp = decode(t, r)
	if r.StatusCode != 422 || resp.Fault != fault.StepLimit.String() {
		t.Fatalf("header budget: status=%d resp=%+v", r.StatusCode, resp)
	}

	// ...but never raise it past the ceiling.
	req, _ = http.NewRequest("GET", ts.URL+"/run/loop", nil)
	req.Header.Set(HeaderTenant, "small")
	req.Header.Set(HeaderMaxSteps, "999999999999")
	start := time.Now()
	r, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp = decode(t, r)
	if r.StatusCode != 422 || time.Since(start) > 5*time.Second {
		t.Fatalf("clamped budget: status=%d after %v, resp=%+v", r.StatusCode, time.Since(start), resp)
	}

	// Unknown tenants are refused, not downgraded.
	req, _ = http.NewRequest("GET", ts.URL+"/run/loop", nil)
	req.Header.Set(HeaderTenant, "nosuch")
	r, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decode(t, r)
	if r.StatusCode != 403 {
		t.Fatalf("unknown tenant: status=%d", r.StatusCode)
	}

	// Malformed budget headers are 400s.
	req, _ = http.NewRequest("GET", ts.URL+"/run/loop", nil)
	req.Header.Set(HeaderMaxSteps, "lots")
	r, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decode(t, r)
	if r.StatusCode != 400 {
		t.Fatalf("bad header: status=%d", r.StatusCode)
	}
}

func TestRequestTimeoutMapsToTimeoutStatus(t *testing.T) {
	cfg := Config{RequestTimeout: 50 * time.Millisecond}
	_, ts := newTestServer(t, cfg, KB{Name: "loop", Source: loopKB})
	r, err := http.Get(ts.URL + "/run/loop")
	if err != nil {
		t.Fatal(err)
	}
	resp := decode(t, r)
	// The executor's deadline poll and the context timer race; both causes
	// are the same budget and must map to 504.
	if r.StatusCode != 504 {
		t.Fatalf("timeout: status=%d resp=%+v", r.StatusCode, resp)
	}
	if resp.Fault != fault.Deadline.String() && resp.Fault != fault.Canceled.String() {
		t.Errorf("timeout fault = %q", resp.Fault)
	}
}

func TestEngineCacheLRUAndNegativeCaching(t *testing.T) {
	c := newEngineCache(2, 0, time.Minute)
	e1, err := c.get("kb", appKB, "app(X,[3],[1,2,3])")
	if err != nil || e1 == nil {
		t.Fatalf("get: %v", err)
	}
	// Same goal hits the same engine.
	e2, err := c.get("kb", appKB, "app(X,[3],[1,2,3])")
	if err != nil || e2 != e1 {
		t.Fatalf("cache miss on identical goal")
	}
	// A bad goal caches its error.
	if _, err := c.get("kb", appKB, "app(X,"); err == nil {
		t.Fatal("bad goal compiled")
	}
	if _, err := c.get("kb", appKB, "app(X,"); err == nil {
		t.Fatal("bad goal compiled on second try")
	}
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
	// A third distinct goal evicts the LRU entry.
	if _, err := c.get("kb", appKB, "app([],X,[7])"); err != nil {
		t.Fatal(err)
	}
	if c.len() != 2 {
		t.Fatalf("cache len after eviction = %d, want 2", c.len())
	}
	// Remaining entries: the newest goal (compiled) and the bad goal
	// (error-only) — the first compiled engine was the LRU victim.
	if got := len(c.engines()); got != 1 {
		t.Fatalf("engines() = %d, want 1", got)
	}
}

func TestEngineCacheConcurrentSameGoal(t *testing.T) {
	c := newEngineCache(8, 0, time.Minute)
	var wg sync.WaitGroup
	engines := make([]any, 16)
	for i := range engines {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := c.get("kb", appKB, "app(X,[3],[1,2,3])")
			if err != nil {
				t.Errorf("get: %v", err)
			}
			engines[i] = e
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(engines); i++ {
		if engines[i] != engines[0] {
			t.Fatalf("concurrent gets produced distinct engines")
		}
	}
}

func TestAdmissionGate(t *testing.T) {
	var met obs.ServerMetrics
	g := newGate(1, 1, &met)

	rel1, err := g.acquire(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Second request queues; third finds the queue full.
	type res struct {
		rel func()
		err error
	}
	second := make(chan res, 1)
	go func() {
		rel, err := g.acquire(context.Background(), time.Second)
		second <- res{rel, err}
	}()
	waitFor(t, time.Second, func() bool { return met.QueueDepth() == 1 })
	if _, err := g.acquire(context.Background(), time.Second); err != errQueueFull {
		t.Fatalf("third acquire: %v, want errQueueFull", err)
	}
	rel1()
	r2 := <-second
	if r2.err != nil {
		t.Fatalf("queued acquire: %v", r2.err)
	}
	r2.rel()

	// Queue-wait timeout.
	rel1, err = g.acquire(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.acquire(context.Background(), 20*time.Millisecond); err != errQueueTimeout {
		t.Fatalf("timed-out acquire: %v, want errQueueTimeout", err)
	}
	// Client abandonment.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.acquire(ctx, time.Second); err != context.Canceled {
		t.Fatalf("abandoned acquire: %v, want context.Canceled", err)
	}
	rel1()

	s := met.Snapshot()
	if s.Shed != nil {
		t.Errorf("gate must not record sheds itself: %v", s.Shed)
	}
	if s.QueueDepth != 0 {
		t.Errorf("queue depth = %d after quiescence", s.QueueDepth)
	}
}

func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{}, KB{Name: "app", Source: appKB})
	// Reach into the mux with a handler that panics, through the guard.
	h := s.protect(func(http.ResponseWriter, *http.Request) { panic("boom") })
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", ts.URL+"/run/app", nil))
	if rec.Code != 500 {
		t.Fatalf("panicking handler: status=%d", rec.Code)
	}
	if got := s.Metrics().Panics; got != 1 {
		t.Fatalf("panics counter = %d", got)
	}
	// The server still answers.
	r, err := http.Get(ts.URL + "/run/app")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != 200 {
		t.Fatalf("server unhealthy after panic: %d", r.StatusCode)
	}
}

func TestMetricsAndHealthEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{}, KB{Name: "app", Source: appKB})
	if r, _ := http.Get(ts.URL + "/run/app"); r != nil {
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	for _, want := range []string{
		"symbol_queries_started_total 1",
		"symbolserve_admitted_total 1",
		`symbolserve_responses_total{class="2xx"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, path := range []string{"/healthz", "/readyz", "/kbs", "/debug/vars", "/metrics?kb=app"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != 200 {
			t.Errorf("%s: status=%d", path, r.StatusCode)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", d)
}
