package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"symbol/internal/obs"
)

// Admission errors, surfaced by gate.acquire and mapped to shed responses
// by the handlers.
var (
	errQueueFull    = errors.New("serve: admission queue full")
	errQueueTimeout = errors.New("serve: admission queue wait timed out")
)

// gate is the admission controller: a bounded in-flight semaphore fronted
// by a bounded wait queue. A request first tries the semaphore without
// queueing (the uncontended fast path costs one channel send); if all
// execution slots are busy it joins the queue, bounded in both depth
// (errQueueFull) and wait time (errQueueTimeout, the earlier of the queue
// budget and the caller's context). Either bound turns overload into a
// fast, cheap rejection instead of an unbounded pile of blocked handlers.
type gate struct {
	sem      chan struct{}
	maxQueue int64
	met      *obs.ServerMetrics
}

func newGate(maxInFlight, maxQueue int, met *obs.ServerMetrics) *gate {
	return &gate{
		sem:      make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
		met:      met,
	}
}

// acquire claims an execution slot, waiting in the queue up to timeout.
// On success it returns a release function that must be called exactly
// once. On failure it returns errQueueFull, errQueueTimeout, or the
// context's error if the client gave up first.
func (g *gate) acquire(ctx context.Context, timeout time.Duration) (func(), error) {
	// Uncontended fast path: a free slot means no queue accounting at all.
	select {
	case g.sem <- struct{}{}:
		return g.admit(), nil
	default:
	}
	if g.met.RecordEnqueue() > g.maxQueue {
		g.met.RecordDequeue(0)
		return nil, errQueueFull
	}
	start := time.Now()
	var timeoutC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case g.sem <- struct{}{}:
		g.met.RecordDequeue(time.Since(start))
		return g.admit(), nil
	case <-timeoutC:
		g.met.RecordDequeue(time.Since(start))
		return nil, errQueueTimeout
	case <-ctx.Done():
		g.met.RecordDequeue(time.Since(start))
		return nil, ctx.Err()
	}
}

// admit records the admission and returns the matching release.
func (g *gate) admit() func() {
	g.met.RecordAdmitted()
	return func() {
		g.met.RecordReleased()
		<-g.sem
	}
}

// depth reports how many requests are currently waiting for admission.
func (g *gate) depth() int64 { return g.met.QueueDepth() }

// inflightTracker counts admitted requests and coordinates drain. A plain
// WaitGroup cannot do this: Add racing Wait at counter zero is undefined,
// and that race is exactly the drain scenario (a request admitted at the
// instant draining begins). The tracker closes the race under one mutex —
// enter refuses once draining has started, so after beginDrain returns, the
// in-flight count can only fall, and the idle channel closes exactly when
// it reaches zero.
type inflightTracker struct {
	mu       sync.Mutex
	n        int
	draining bool
	idle     chan struct{}
	closed   bool
}

func newInflightTracker() *inflightTracker {
	return &inflightTracker{idle: make(chan struct{})}
}

// enter registers an admitted request. It reports false once draining has
// begun: the caller must shed instead of running.
func (t *inflightTracker) enter() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.draining {
		return false
	}
	t.n++
	return true
}

// exit unregisters a request registered by enter.
func (t *inflightTracker) exit() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n--
	if t.draining && t.n == 0 && !t.closed {
		t.closed = true
		close(t.idle)
	}
}

// beginDrain stops future enters and returns a channel that closes when
// the last in-flight request exits (immediately if none are in flight).
// Idempotent; every caller gets the same channel.
func (t *inflightTracker) beginDrain() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.draining = true
	if t.n == 0 && !t.closed {
		t.closed = true
		close(t.idle)
	}
	return t.idle
}
