package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"symbol"
	"symbol/internal/obs"
)

// engineCache is a small LRU of compiled query engines keyed by
// (knowledge base, goal). Serving traffic repeats queries — dashboards
// refresh, load tests hammer one goal — so the common case skips the
// Prolog → BAM → ICI compile entirely and lands on a warm Engine whose
// machine-state pool is already populated. Each entry compiles at most
// once, under a per-entry sync.Once, so a burst of identical cold queries
// does one compile while the rest wait for its result.
//
// Evicting an entry must not make the server's merged metrics go
// backwards: the pressure monitor subtracts consecutive merged snapshots,
// and a vanished engine would subtract its whole history from the next
// window, producing garbage quantiles. So eviction retires the engine's
// final snapshot into an accumulator that stays merged into every future
// read (see retired).
type engineCache struct {
	mu      sync.Mutex
	cap     int
	negTTL  time.Duration
	entries map[string]*list.Element
	lru     list.List // front = most recent; values are *cacheEntry

	// retired accumulates the final Metrics snapshot of every evicted
	// engine, so the merged view (live engines + retired) is monotone even
	// as the LRU churns. InFlight is zeroed on retirement: a run still
	// executing on an evicted engine finishes invisibly, and a permanent
	// phantom in-flight count would be worse than the small undercount.
	retired      obs.Snapshot
	retiredCount int64
}

type cacheEntry struct {
	key  string
	once sync.Once
	// eng is atomic because engines() enumerates entries concurrently with
	// a first-use compile publishing the pointer.
	eng atomic.Pointer[symbol.Engine]
	err error
	// failedAt is the unix-nano time the compile failed, published (after
	// err, release via the Store) for the TTL check in get. 0 while the
	// compile is running or after it succeeded.
	failedAt atomic.Int64
}

func newEngineCache(capacity int, negTTL time.Duration) *engineCache {
	return &engineCache{cap: capacity, negTTL: negTTL, entries: map[string]*list.Element{}}
}

// get returns the engine for (kb, goal), compiling it on first use. A goal
// that fails to compile is cached too (negative caching), so a client
// retrying a bad query in a loop costs a map hit, not a recompile — but
// only for negTTL: compile errors can be transient (a KB hot-reloaded
// mid-edit, a resource-shaped fault), so after the TTL the entry is
// replaced with a fresh one and the next request retries the compile. The
// replacement carries a fresh sync.Once, so the retry keeps the
// one-compile-per-burst guarantee.
func (c *engineCache) get(kbName, kbSrc, goal string) (*symbol.Engine, error) {
	key := kbName + "\x00" + goal
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		e := el.Value.(*cacheEntry)
		if fa := e.failedAt.Load(); fa > 0 && c.negTTL > 0 && time.Since(time.Unix(0, fa)) >= c.negTTL {
			// Expired negative entry: swap in a fresh entry in place (same
			// LRU position) and let this request redo the compile.
			el.Value = &cacheEntry{key: key}
		}
		c.lru.MoveToFront(el)
	} else {
		el = c.lru.PushFront(&cacheEntry{key: key})
		c.entries[key] = el
		for c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			old := oldest.Value.(*cacheEntry)
			delete(c.entries, old.key)
			if e := old.eng.Load(); e != nil {
				snap := e.Metrics()
				snap.InFlight = 0
				c.retired.Merge(snap)
				c.retiredCount++
			}
		}
	}
	e := el.Value.(*cacheEntry)
	c.mu.Unlock()

	e.once.Do(func() {
		prog, err := symbol.CompileQuery(kbSrc, goal)
		if err != nil {
			e.err = err
			e.failedAt.Store(time.Now().UnixNano())
			return
		}
		e.eng.Store(symbol.NewEngine(prog))
	})
	return e.eng.Load(), e.err
}

// engines lists every compiled engine currently cached, for metrics
// merging and the pressure monitor.
func (c *engineCache) engines() []*symbol.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*symbol.Engine
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*cacheEntry).eng.Load(); e != nil {
			out = append(out, e)
		}
	}
	return out
}

// retiredSnapshot deep-copies the accumulated metrics of evicted engines.
func (c *engineCache) retiredSnapshot() obs.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out obs.Snapshot
	out.Merge(c.retired)
	return out
}

// mergedMetrics returns retired history + every live cached engine in one
// snapshot, read under the same lock eviction retires under. The single
// critical section is what makes consecutive reads monotone: an engine is
// observed either live or via its final retired snapshot, never in the gap
// between the two (reading them in separate locked sections lets an
// eviction slip between the reads and an engine's whole history vanish
// from — or be double-counted in — one merged view).
func (c *engineCache) mergedMetrics() obs.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out obs.Snapshot
	out.Merge(c.retired)
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*cacheEntry).eng.Load(); e != nil {
			out.Merge(e.Metrics())
		}
	}
	return out
}

// len reports the number of cached entries (for tests).
func (c *engineCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
