package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"symbol"
	"symbol/internal/obs"
)

// engineCache is a small LRU of compiled query engines keyed by
// (knowledge base, goal). Serving traffic repeats queries — dashboards
// refresh, load tests hammer one goal — so the common case skips the
// Prolog → BAM → ICI compile entirely and lands on a warm Engine whose
// machine-state pool is already populated. Each entry compiles at most
// once, under a per-entry sync.Once, so a burst of identical cold queries
// does one compile while the rest wait for its result.
//
// Evicting an entry must not make the server's merged metrics go
// backwards: the pressure monitor subtracts consecutive merged snapshots,
// and a vanished engine would subtract its whole history from the next
// window, producing garbage quantiles. So eviction retires the engine's
// final snapshot into an accumulator that stays merged into every future
// read (see retired).
// Capacity is bounded twice: by entry count (the original LRU cap) and by
// estimated resident bytes. Entry count is a poor proxy for memory — one
// engine whose pool has faulted in a few machine states holds hundreds of
// megabytes while a never-run engine holds kilobytes — so eviction also
// sums Engine.Footprint over the live entries and evicts from the LRU tail
// while the total exceeds the byte budget (always keeping at least one
// entry: evicting the engine a request is about to use would just force an
// immediate recompile).
type engineCache struct {
	mu      sync.Mutex
	cap     int
	budget  int64 // estimated resident bytes; 0 = unbounded
	negTTL  time.Duration
	entries map[string]*list.Element
	lru     list.List // front = most recent; values are *cacheEntry

	// retired accumulates the final Metrics snapshot of every evicted
	// engine, so the merged view (live engines + retired) is monotone even
	// as the LRU churns. InFlight is zeroed on retirement: a run still
	// executing on an evicted engine finishes invisibly, and a permanent
	// phantom in-flight count would be worse than the small undercount.
	retired      obs.Snapshot
	retiredCount int64

	// warm holds pre-built query snapshots keyed by source hash + goal
	// (see warmKey): a cold cache entry for a warmed (kb, goal) loads its
	// snapshot — ICI code, atom table, predecoded streams — instead of
	// compiling from scratch. The map stores bytes, not engines, so a
	// warmed goal that is never asked costs its snapshot's size and
	// nothing else, and eviction/metrics invariants of the LRU are
	// untouched: the warm tier only changes how an entry's engine is
	// born. Written only at boot (addWarm), read under warmMu thereafter.
	warmMu sync.RWMutex
	warm   map[string][]byte
}

// warmKey addresses the warm tier by content, not KB name: the hash of
// the knowledge-base source plus the normalized goal ("?-" and surrounding
// space stripped, matching what a query snapshot records as its Goal). A
// renamed KB with identical source still hits its warmed queries.
func warmKey(kbSrc, goal string) string {
	h := sha256.Sum256([]byte(kbSrc))
	goal = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(goal), "?-"))
	return string(h[:]) + "\x00" + goal
}

// addWarm registers a query snapshot for (kbSrc, goal). Boot-time only.
func (c *engineCache) addWarm(kbSrc, goal string, snap []byte) {
	c.warmMu.Lock()
	if c.warm == nil {
		c.warm = map[string][]byte{}
	}
	c.warm[warmKey(kbSrc, goal)] = snap
	c.warmMu.Unlock()
}

// lookupWarm returns the warmed snapshot for (kbSrc, goal), nil if none.
func (c *engineCache) lookupWarm(kbSrc, goal string) []byte {
	c.warmMu.RLock()
	snap := c.warm[warmKey(kbSrc, goal)]
	c.warmMu.RUnlock()
	return snap
}

type cacheEntry struct {
	key  string
	once sync.Once
	// eng is atomic because engines() enumerates entries concurrently with
	// a first-use compile publishing the pointer.
	eng atomic.Pointer[symbol.Engine]
	err error
	// failedAt is the unix-nano time the compile failed, published (after
	// err, release via the Store) for the TTL check in get. 0 while the
	// compile is running or after it succeeded.
	failedAt atomic.Int64
	// bytes is the entry's footprint as of the last budget check (guarded
	// by the cache mutex; observability only — the check re-reads
	// Engine.Footprint each pass).
	bytes int64
	// pins counts requests currently using this entry's engine (guarded by
	// the cache mutex). Eviction skips pinned entries: retiring an
	// engine's metrics snapshot while requests are still parked on it —
	// the coalescer holds members for a batching window before their runs
	// start — would lose those runs from the server's merged, monotone
	// view. The pin is taken inside the cache lock at lookup, so there is
	// no window between handing out the engine and protecting it.
	pins int
}

func newEngineCache(capacity int, budgetBytes int64, negTTL time.Duration) *engineCache {
	return &engineCache{cap: capacity, budget: budgetBytes, negTTL: negTTL, entries: map[string]*list.Element{}}
}

// get returns the engine for (kb, goal), compiling it on first use. A goal
// that fails to compile is cached too (negative caching), so a client
// retrying a bad query in a loop costs a map hit, not a recompile — but
// only for negTTL: compile errors can be transient (a KB hot-reloaded
// mid-edit, a resource-shaped fault), so after the TTL the entry is
// replaced with a fresh one and the next request retries the compile. The
// replacement carries a fresh sync.Once, so the retry keeps the
// one-compile-per-burst guarantee.
func (c *engineCache) get(kbName, kbSrc, goal string) (*symbol.Engine, error) {
	eng, unpin, err := c.getPinned(kbName, kbSrc, goal)
	unpin()
	return eng, err
}

// getPinned is get plus a pin on the entry for the caller's lifetime: the
// engine cannot be evicted (its metrics cannot be retired) until the
// returned unpin runs. Callers that park the engine in the coalescer hold
// the pin until their run's outcome has been recorded on the engine, which
// keeps the server's merged metrics complete. unpin is never nil and must
// be called exactly once.
func (c *engineCache) getPinned(kbName, kbSrc, goal string) (*symbol.Engine, func(), error) {
	key := kbName + "\x00" + goal
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		e := el.Value.(*cacheEntry)
		if fa := e.failedAt.Load(); fa > 0 && c.negTTL > 0 && time.Since(time.Unix(0, fa)) >= c.negTTL {
			// Expired negative entry: swap in a fresh entry in place (same
			// LRU position) and let this request redo the compile.
			el.Value = &cacheEntry{key: key}
		}
		c.lru.MoveToFront(el)
	} else {
		el = c.lru.PushFront(&cacheEntry{key: key})
		c.entries[key] = el
	}
	e := el.Value.(*cacheEntry)
	e.pins++
	c.evictLocked()
	c.mu.Unlock()

	e.once.Do(func() {
		// Snapshot-warmed fast path: a pre-built query snapshot for this
		// (source, goal) skips parse/compile/predecode entirely. A corrupt
		// warm snapshot falls through to the normal compile — warming is an
		// optimization, never a new failure mode.
		if snap := c.lookupWarm(kbSrc, goal); snap != nil {
			if prog, err := symbol.Load(context.Background(), snap); err == nil {
				e.eng.Store(symbol.NewEngine(prog))
				return
			}
		}
		prog, err := symbol.CompileQuery(kbSrc, goal)
		if err != nil {
			e.err = err
			e.failedAt.Store(time.Now().UnixNano())
			return
		}
		e.eng.Store(symbol.NewEngine(prog))
	})
	unpin := func() {
		c.mu.Lock()
		if e.pins--; e.pins < 0 {
			e.pins = 0
		}
		c.evictLocked()
		c.mu.Unlock()
	}
	return e.eng.Load(), unpin, e.err
}

// evictLocked trims the LRU tail while either bound is exceeded: entry
// count past cap, or estimated resident bytes past budget (never evicting
// the last entry on bytes alone). Footprints are re-read on every pass —
// an engine's pool grows as runs fault states in, so the estimate is only
// current at the moment of the check. Pinned engines are skipped; when
// only pinned entries remain the bounds are temporarily exceeded and the
// next get or unpin retries. Called with c.mu held.
func (c *engineCache) evictLocked() {
	for c.lru.Len() > c.cap || (c.budget > 0 && c.lru.Len() > 1 && c.bytesLocked() > c.budget) {
		evicted := false
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			old := el.Value.(*cacheEntry)
			if old.pins > 0 {
				continue
			}
			c.lru.Remove(el)
			delete(c.entries, old.key)
			if e := old.eng.Load(); e != nil {
				snap := e.Metrics()
				snap.InFlight = 0
				c.retired.Merge(snap)
				c.retiredCount++
			}
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// bytesLocked sums the live entries' estimated footprints, refreshing each
// entry's cached figure. Called with c.mu held.
func (c *engineCache) bytesLocked() int64 {
	var n int64
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if eng := e.eng.Load(); eng != nil {
			b := eng.Footprint()
			e.bytes = b
			n += b
		}
	}
	return n
}

// bytes reports the cache's current estimated resident footprint.
func (c *engineCache) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesLocked()
}

// engines lists every compiled engine currently cached, for metrics
// merging and the pressure monitor.
func (c *engineCache) engines() []*symbol.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*symbol.Engine
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*cacheEntry).eng.Load(); e != nil {
			out = append(out, e)
		}
	}
	return out
}

// retiredSnapshot deep-copies the accumulated metrics of evicted engines.
func (c *engineCache) retiredSnapshot() obs.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out obs.Snapshot
	out.Merge(c.retired)
	return out
}

// mergedMetrics returns retired history + every live cached engine in one
// snapshot, read under the same lock eviction retires under. The single
// critical section is what makes consecutive reads monotone: an engine is
// observed either live or via its final retired snapshot, never in the gap
// between the two (reading them in separate locked sections lets an
// eviction slip between the reads and an engine's whole history vanish
// from — or be double-counted in — one merged view).
func (c *engineCache) mergedMetrics() obs.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out obs.Snapshot
	out.Merge(c.retired)
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*cacheEntry).eng.Load(); e != nil {
			out.Merge(e.Metrics())
		}
	}
	return out
}

// len reports the number of cached entries (for tests).
func (c *engineCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
