package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"symbol"
)

// engineCache is a small LRU of compiled query engines keyed by
// (knowledge base, goal). Serving traffic repeats queries — dashboards
// refresh, load tests hammer one goal — so the common case skips the
// Prolog → BAM → ICI compile entirely and lands on a warm Engine whose
// machine-state pool is already populated. Each entry compiles at most
// once, under a per-entry sync.Once, so a burst of identical cold queries
// does one compile while the rest wait for its result.
type engineCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     list.List // front = most recent; values are *cacheEntry
}

type cacheEntry struct {
	key  string
	once sync.Once
	// eng is atomic because engines() enumerates entries concurrently with
	// a first-use compile publishing the pointer.
	eng atomic.Pointer[symbol.Engine]
	err error
}

func newEngineCache(capacity int) *engineCache {
	return &engineCache{cap: capacity, entries: map[string]*list.Element{}}
}

// get returns the engine for (kb, goal), compiling it on first use. A goal
// that fails to compile is cached too (negative caching), so a client
// retrying a bad query in a loop costs a map hit, not a recompile.
func (c *engineCache) get(kbName, kbSrc, goal string) (*symbol.Engine, error) {
	key := kbName + "\x00" + goal
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		el = c.lru.PushFront(&cacheEntry{key: key})
		c.entries[key] = el
		for c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
		}
	} else {
		c.lru.MoveToFront(el)
	}
	e := el.Value.(*cacheEntry)
	c.mu.Unlock()

	e.once.Do(func() {
		prog, err := symbol.CompileQuery(kbSrc, goal)
		if err != nil {
			e.err = err
			return
		}
		e.eng.Store(symbol.NewEngine(prog))
	})
	return e.eng.Load(), e.err
}

// engines lists every compiled engine currently cached, for metrics
// merging and the pressure monitor.
func (c *engineCache) engines() []*symbol.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*symbol.Engine
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*cacheEntry).eng.Load(); e != nil {
			out = append(out, e)
		}
	}
	return out
}

// len reports the number of cached entries (for tests).
func (c *engineCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
