package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"symbol"
	"symbol/internal/fault"
)

// parkCursor opens a paginated stream and parks it, so the test holds one
// admission slot that is in flight but NOT parked in the coalescer. That
// keeps InFlight strictly above the batcher's parked count, disabling the
// quiet early close — the batch under test can only flush by filling
// (MaxBatch) or by its window timer, which makes the coalescing assertions
// deterministic.
func parkCursor(t *testing.T, ts string) string {
	t.Helper()
	r, err := http.Get(ts + "/query/app?limit=1&q=app(X,Y,[1,2,3])")
	if err != nil {
		t.Fatal(err)
	}
	resp := decode(t, r)
	if r.StatusCode != 200 || !resp.More || resp.Cursor == "" {
		t.Fatalf("parking cursor: status=%d resp=%+v", r.StatusCode, resp)
	}
	return resp.Cursor
}

// TestBatchCoalescesIdenticalGoals is the coalescing contract under -race:
// N concurrent identical goals compile once, gather into ONE batch, and are
// all answered by ONE engine run — while each request still gets its own
// complete, correct response.
func TestBatchCoalescesIdenticalGoals(t *testing.T) {
	const n = 6
	s, ts := newTestServer(t, Config{
		MaxInFlight: n + 2,
		MaxBatch:    n,
		BatchWindow: 2 * time.Second, // flush must come from the batch filling
	}, KB{Name: "app", Source: appKB})

	parkCursor(t, ts.URL)

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := http.Get(ts.URL + "/query/app?q=app(X,[3],[1,2,3])")
			if err != nil {
				errs <- err
				return
			}
			resp := decode(t, r)
			if r.StatusCode != 200 || !resp.OK || resp.Output != "X = [1,2]\n" {
				errs <- fmt.Errorf("status=%d resp=%+v", r.StatusCode, resp)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.Metrics()
	if m.BatchesTotal != 1 {
		t.Errorf("BatchesTotal = %d, want 1", m.BatchesTotal)
	}
	if m.BatchMembersTotal != n {
		t.Errorf("BatchMembersTotal = %d, want %d", m.BatchMembersTotal, n)
	}
	if m.BatchRunsTotal != 1 {
		t.Errorf("BatchRunsTotal = %d, want 1 (identical goals must share one run)", m.BatchRunsTotal)
	}
	// One cache entry per distinct goal: the cursor's and the shared one.
	if got := s.cache.len(); got != 2 {
		t.Errorf("cache entries = %d, want 2", got)
	}
}

// TestBatchMemberBudgetsIndependent: members of one batch with different
// budgets land in different classes and keep their own outcomes — one
// member faults on its tightened step budget (422) while its siblings in
// the same batch succeed (200).
func TestBatchMemberBudgetsIndependent(t *testing.T) {
	const n = 5 // 4 default-budget members + 1 starved member
	s, ts := newTestServer(t, Config{
		MaxInFlight: n + 2,
		MaxBatch:    n,
		BatchWindow: 2 * time.Second,
	}, KB{Name: "app", Source: appKB})

	parkCursor(t, ts.URL)

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		starved := i == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest("GET", ts.URL+"/query/app?q=app(X,[3],[1,2,3])", nil)
			if starved {
				req.Header.Set(HeaderMaxSteps, "1")
			}
			r, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			resp := decode(t, r)
			if starved {
				if r.StatusCode != 422 || resp.Fault != fault.StepLimit.String() {
					errs <- fmt.Errorf("starved member: status=%d resp=%+v", r.StatusCode, resp)
				}
			} else if r.StatusCode != 200 || !resp.OK || resp.Output != "X = [1,2]\n" {
				errs <- fmt.Errorf("sibling: status=%d resp=%+v", r.StatusCode, resp)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.Metrics()
	if m.BatchesTotal != 1 || m.BatchMembersTotal != n {
		t.Errorf("batches=%d members=%d, want 1/%d", m.BatchesTotal, m.BatchMembersTotal, n)
	}
	if m.BatchRunsTotal != 2 {
		t.Errorf("BatchRunsTotal = %d, want 2 (default class + starved class)", m.BatchRunsTotal)
	}
}

// TestTenantQuotaSheds: a tenant at its provisioned concurrency sheds with
// 429 tenant_quota before touching the global gate, other tenants are
// unaffected, and finishing a request frees the quota slot.
func TestTenantQuotaSheds(t *testing.T) {
	cfg := Config{
		MaxInFlight:    4,
		RequestTimeout: 2 * time.Second,
		Tenants: map[string]Tenant{
			"metered": {MaxConcurrent: 1, Timeout: 2 * time.Second},
		},
	}
	s, ts := newTestServer(t, cfg, KB{Name: "loop", Source: loopKB}, KB{Name: "app", Source: appKB})
	client := ts.Client()

	// Occupy the metered tenant's single slot with a long run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequest("GET", ts.URL+"/run/loop", nil)
		req.Header.Set(HeaderTenant, "metered")
		req.Header.Set(HeaderTimeout, "500ms")
		r, err := client.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		resp := decode(t, r)
		if r.StatusCode != 504 {
			t.Errorf("long run: status=%d resp=%+v", r.StatusCode, resp)
		}
	}()
	waitFor(t, 2*time.Second, func() bool { return s.Metrics().InFlight >= 1 })

	// Second metered request sheds with the tenant_quota reason.
	req, _ := http.NewRequest("GET", ts.URL+"/run/app", nil)
	req.Header.Set(HeaderTenant, "metered")
	r, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp := decode(t, r)
	if r.StatusCode != 429 || r.Header.Get(ShedReasonHeader) != "tenant_quota" {
		t.Fatalf("quota shed: status=%d shed=%q resp=%+v", r.StatusCode, r.Header.Get(ShedReasonHeader), resp)
	}
	if got := s.Metrics().Shed["tenant_quota"]; got != 1 {
		t.Errorf("shed tenant_quota = %d, want 1", got)
	}

	// The default tenant is not affected by the metered tenant's quota.
	r, err = client.Get(ts.URL + "/run/app")
	if err != nil {
		t.Fatal(err)
	}
	resp = decode(t, r)
	if r.StatusCode != 200 || !resp.OK {
		t.Fatalf("default tenant during quota pressure: status=%d resp=%+v", r.StatusCode, resp)
	}

	// After the long run finishes its slot is free again.
	<-done
	req, _ = http.NewRequest("GET", ts.URL+"/run/app", nil)
	req.Header.Set(HeaderTenant, "metered")
	r, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp = decode(t, r)
	if r.StatusCode != 200 || !resp.OK {
		t.Fatalf("metered tenant after release: status=%d resp=%+v", r.StatusCode, resp)
	}
}

// TestCacheBytesBudgetEvicts: the engine cache evicts on estimated
// resident bytes even when the entry count is far under capacity, keeps at
// least one entry, and an unbounded-bytes cache (budget 0) does not.
func TestCacheBytesBudgetEvicts(t *testing.T) {
	kb := appKB
	run := func(c *engineCache, goal string) {
		t.Helper()
		eng, err := c.get("app", kb, goal)
		if err != nil {
			t.Fatal(err)
		}
		// Run once so the engine faults in a pooled state: footprint jumps
		// from code-only kilobytes to the full machine-image estimate.
		if _, err := eng.Run(context.Background(), symbol.RunOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	// A 1-byte budget: any engine that has run exceeds it, so every insert
	// past the first evicts down to one entry.
	c := newEngineCache(10, 1, time.Minute)
	run(c, "app(X,[3],[1,2,3])")
	run(c, "app([1],Y,[1,2])")
	if got := c.len(); got != 1 {
		t.Errorf("bytes-budget cache entries = %d, want 1", got)
	}
	if c.bytes() <= 0 {
		t.Errorf("cache bytes = %d, want > 0 after a run", c.bytes())
	}

	// Budget 0 = unbounded: both entries stay.
	u := newEngineCache(10, 0, time.Minute)
	run(u, "app(X,[3],[1,2,3])")
	run(u, "app([1],Y,[1,2])")
	if got := u.len(); got != 2 {
		t.Errorf("unbounded cache entries = %d, want 2", got)
	}

	// A pinned entry survives the budget squeeze: under a 1-byte budget the
	// squeeze always evicts down to one entry, and that survivor must be
	// the pinned one, not the most recent.
	p := newEngineCache(10, 1, time.Minute)
	eng, unpin, err := p.getPinned("app", kb, "app(X,[3],[1,2,3])")
	if err != nil {
		t.Fatal(err)
	}
	defer unpin()
	if _, err := eng.Run(context.Background(), symbol.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	run(p, "app([1],Y,[1,2])")
	if got := p.len(); got != 1 {
		t.Errorf("pinned cache entries = %d, want 1 (squeeze evicts the unpinned entry)", got)
	}
	same, err := p.get("app", kb, "app(X,[3],[1,2,3])")
	if err != nil {
		t.Fatal(err)
	}
	if same != eng {
		t.Error("pinned entry was evicted: re-get compiled a fresh engine")
	}
}
