package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"testing"
	"time"

	"symbol"
)

// getPage fetches one page of a paginated query and decodes it.
func getPage(t *testing.T, base, kb string, params url.Values) (int, Response) {
	t.Helper()
	r, err := http.Get(base + "/query/" + kb + "?" + params.Encode())
	if err != nil {
		t.Fatal(err)
	}
	return r.StatusCode, decode(t, r)
}

// TestQueryPagination walks a 4-solution goal in pages of 2: first page
// parks the stream behind a cursor, the resume drains it, and the spent
// cursor is single-use.
func TestQueryPagination(t *testing.T) {
	s, ts := newTestServer(t, Config{}, KB{Name: "app", Source: appKB})

	status, p1 := getPage(t, ts.URL, "app", url.Values{
		"q": {"app(X, Y, [1,2,3])"}, "limit": {"2"},
	})
	if status != 200 || !p1.OK {
		t.Fatalf("page 1: status=%d resp=%+v", status, p1)
	}
	if len(p1.Solutions) != 2 || !p1.More || p1.Cursor == "" {
		t.Fatalf("page 1: %+v", p1)
	}
	if p1.Solutions[0].Output != "X = []\nY = [1,2,3]\n" {
		t.Fatalf("page 1 first solution %q", p1.Solutions[0].Output)
	}
	if got := s.Metrics().CursorsOpen; got != 1 {
		t.Fatalf("cursors open = %d, want 1", got)
	}

	status, p2 := getPage(t, ts.URL, "app", url.Values{"cursor": {p1.Cursor}})
	if status != 200 || len(p2.Solutions) != 2 {
		t.Fatalf("page 2: status=%d resp=%+v", status, p2)
	}
	if p2.Solutions[0].Output != "X = [1,2]\nY = [3]\n" {
		t.Fatalf("page 2 resumed at %q, want third solution", p2.Solutions[0].Output)
	}
	// Steps stay cumulative across the cursor hop.
	if p2.Solutions[0].Steps <= p1.Solutions[1].Steps {
		t.Fatalf("steps not cumulative across pages: %d then %d",
			p1.Solutions[1].Steps, p2.Solutions[0].Steps)
	}

	// 4 solutions delivered in 2+2: page 2 parked again (More unknown
	// until the next backtrack), so drain the tail.
	cursor := p2.Cursor
	for p2.More {
		if cursor == "" {
			t.Fatalf("More without a cursor outside drain: %+v", p2)
		}
		status, p2 = getPage(t, ts.URL, "app", url.Values{"cursor": {cursor}})
		if status != 200 {
			t.Fatalf("tail page: status=%d resp=%+v", status, p2)
		}
		if len(p2.Solutions) != 0 {
			t.Fatalf("extra solutions past the fourth: %+v", p2.Solutions)
		}
		cursor = p2.Cursor
	}
	if got := s.Metrics().CursorsOpen; got != 0 {
		t.Fatalf("cursors open after exhaustion = %d, want 0", got)
	}

	// The spent first-page cursor was claimed by page 2: stale now.
	status, stale := getPage(t, ts.URL, "app", url.Values{"cursor": {p1.Cursor}})
	if status != 404 {
		t.Fatalf("stale cursor: status=%d resp=%+v", status, stale)
	}
}

// TestQueryPaginationValidation: limit must be a positive integer, on both
// the first page and a resume.
func TestQueryPaginationValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{}, KB{Name: "app", Source: appKB})
	for _, bad := range []string{"0", "-2", "x"} {
		status, resp := getPage(t, ts.URL, "app", url.Values{
			"q": {"app(X, Y, [1,2])"}, "limit": {bad},
		})
		if status != 400 {
			t.Fatalf("limit=%q: status=%d resp=%+v", bad, status, resp)
		}
	}

	status, p1 := getPage(t, ts.URL, "app", url.Values{
		"q": {"app(X, Y, [1,2])"}, "limit": {"1"},
	})
	if status != 200 || p1.Cursor == "" {
		t.Fatalf("page 1: status=%d resp=%+v", status, p1)
	}
	// A bad limit on resume is rejected without burning the cursor.
	status, _ = getPage(t, ts.URL, "app", url.Values{"cursor": {p1.Cursor}, "limit": {"nope"}})
	if status != 400 {
		t.Fatalf("bad resume limit: status=%d", status)
	}
	status, p2 := getPage(t, ts.URL, "app", url.Values{"cursor": {p1.Cursor}, "limit": {"5"}})
	if status != 200 || len(p2.Solutions) != 2 || p2.More {
		t.Fatalf("resume after rejected limit: status=%d resp=%+v", status, p2)
	}
}

// TestCursorWrongKB: resuming against the wrong kb is a 404 that leaves
// the cursor usable on the right one.
func TestCursorWrongKB(t *testing.T) {
	_, ts := newTestServer(t, Config{},
		KB{Name: "app", Source: appKB},
		KB{Name: "other", Source: "q(1).\n"})
	status, p1 := getPage(t, ts.URL, "app", url.Values{
		"q": {"app(X, Y, [1,2])"}, "limit": {"1"},
	})
	if status != 200 || p1.Cursor == "" {
		t.Fatalf("page 1: status=%d resp=%+v", status, p1)
	}
	status, _ = getPage(t, ts.URL, "other", url.Values{"cursor": {p1.Cursor}})
	if status != 404 {
		t.Fatalf("wrong-kb resume: status=%d", status)
	}
	status, p2 := getPage(t, ts.URL, "app", url.Values{"cursor": {p1.Cursor}})
	if status != 200 || len(p2.Solutions) == 0 {
		t.Fatalf("right-kb resume after wrong-kb 404: status=%d resp=%+v", status, p2)
	}
}

// TestParkedCursorHoldsAdmission: a suspended stream keeps its execution
// slot, so with MaxInFlight=1 the server sheds new work until the cursor
// is drained or expires.
func TestParkedCursorHoldsAdmission(t *testing.T) {
	s, ts := newTestServer(t,
		Config{MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 30 * time.Millisecond},
		KB{Name: "app", Source: appKB})

	status, p1 := getPage(t, ts.URL, "app", url.Values{
		"q": {"app(X, Y, [1,2,3])"}, "limit": {"1"},
	})
	if status != 200 || p1.Cursor == "" {
		t.Fatalf("page 1: status=%d resp=%+v", status, p1)
	}

	// The parked stream owns the only slot: a fresh request queues, times
	// out, and is shed.
	r, err := http.Get(ts.URL + "/run/app")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request while slot parked: status=%d, want 429", r.StatusCode)
	}

	// Resuming does not need a second slot (it reuses the parked one).
	cursor := p1.Cursor
	for cursor != "" {
		var p Response
		status, p = getPage(t, ts.URL, "app", url.Values{"cursor": {cursor}})
		if status != 200 {
			t.Fatalf("resume: status=%d resp=%+v", status, p)
		}
		cursor = p.Cursor
	}
	if got := s.Metrics().CursorsOpen; got != 0 {
		t.Fatalf("cursors open = %d after drain-by-resume", got)
	}

	// Slot released: plain requests flow again.
	r, err = http.Get(ts.URL + "/run/app")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != 200 {
		t.Fatalf("request after stream finished: status=%d", r.StatusCode)
	}
}

// TestCursorTTLExpiry: an abandoned cursor is reclaimed by its TTL — the
// admission slot frees up and the cursor turns stale.
func TestCursorTTLExpiry(t *testing.T) {
	s, ts := newTestServer(t,
		Config{MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 20 * time.Millisecond, CursorTTL: 60 * time.Millisecond},
		KB{Name: "app", Source: appKB})

	status, p1 := getPage(t, ts.URL, "app", url.Values{
		"q": {"app(X, Y, [1,2,3])"}, "limit": {"1"},
	})
	if status != 200 || p1.Cursor == "" {
		t.Fatalf("page 1: status=%d resp=%+v", status, p1)
	}
	waitFor(t, 2*time.Second, func() bool { return s.Metrics().CursorsExpired == 1 })
	if got := s.Metrics().CursorsOpen; got != 0 {
		t.Fatalf("cursors open after expiry = %d", got)
	}

	status, _ = getPage(t, ts.URL, "app", url.Values{"cursor": {p1.Cursor}})
	if status != 404 {
		t.Fatalf("expired cursor: status=%d", status)
	}
	// The slot came back with the expiry.
	r, err := http.Get(ts.URL + "/run/app")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != 200 {
		t.Fatalf("request after cursor expiry: status=%d", r.StatusCode)
	}
}

// TestDrainClosesParkedCursors: graceful drain must not hang on a parked
// stream — the cursor sweep closes it (releasing the engine's in-flight
// slot) so Drain completes, and later resumes are shed.
func TestDrainClosesParkedCursors(t *testing.T) {
	s, ts := newTestServer(t, Config{}, KB{Name: "app", Source: appKB})

	status, p1 := getPage(t, ts.URL, "app", url.Values{
		"q": {"app(X, Y, [1,2,3])"}, "limit": {"1"},
	})
	if status != 200 || p1.Cursor == "" {
		t.Fatalf("page 1: status=%d resp=%+v", status, p1)
	}

	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain with a parked cursor: %v", err)
	}
	if got := s.Metrics().CursorsOpen; got != 0 {
		t.Fatalf("cursors open after drain = %d", got)
	}
	status, _ = getPage(t, ts.URL, "app", url.Values{"cursor": {p1.Cursor}})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("resume while drained: status=%d, want 503", status)
	}
}

// TestNegativeCacheTTL: a compile error is served from cache until the TTL
// passes, then the next request retries the compile — so a transient
// failure (here simulated by fixing the kb source between calls) heals
// instead of poisoning the (kb, goal) key forever.
func TestNegativeCacheTTL(t *testing.T) {
	const ttl = 50 * time.Millisecond
	c := newEngineCache(4, 0, ttl)

	broken := "app([],L,L).\napp([H|T],L,[H|R]) :- app(T,L" // truncated source
	if _, err := c.get("kb", broken, "app(X,[3],[1,2,3])"); err == nil {
		t.Fatal("broken kb compiled")
	}
	// Before the TTL the error is served from cache even though the
	// source is fixed now.
	if _, err := c.get("kb", appKB, "app(X,[3],[1,2,3])"); err == nil {
		t.Fatal("negative entry expired immediately")
	}
	time.Sleep(ttl + 20*time.Millisecond)
	eng, err := c.get("kb", appKB, "app(X,[3],[1,2,3])")
	if err != nil || eng == nil {
		t.Fatalf("retry after TTL: %v", err)
	}
	// The healed entry is a normal positive entry now.
	if e2, err := c.get("kb", appKB, "app(X,[3],[1,2,3])"); err != nil || e2 != eng {
		t.Fatalf("healed entry not cached: %v", err)
	}
	if c.len() != 1 {
		t.Fatalf("cache len = %d, want 1 (in-place replacement)", c.len())
	}
}

// TestEvictionRetiresMetrics: evicting an engine folds its history into
// the retired accumulator, so the merged view never shrinks.
func TestEvictionRetiresMetrics(t *testing.T) {
	c := newEngineCache(1, 0, time.Minute)
	e1, err := c.get("kb", appKB, "app(X,[3],[1,2,3])")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Run(context.Background(), symbol.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	// A second goal evicts the first engine (capacity 1).
	if _, err := c.get("kb", appKB, "app([],X,[7])"); err != nil {
		t.Fatal(err)
	}
	snap := c.retiredSnapshot()
	if snap.Started != 1 || snap.Succeeded != 1 {
		t.Fatalf("retired snapshot started=%d succeeded=%d, want 1/1", snap.Started, snap.Succeeded)
	}
	if snap.InFlight != 0 {
		t.Fatalf("retired snapshot carries in-flight %d, want 0", snap.InFlight)
	}
}

// TestEvictionMonotoneUnderChurn is the monotonicity proof required by the
// eviction fix: with a tiny cache and many distinct goals churning the LRU
// under -race, every consecutive merged engine snapshot must be monotone
// (Started never decreases, latency mass never shrinks) and the pressure
// monitor must observe zero clamped regressions.
func TestEvictionMonotoneUnderChurn(t *testing.T) {
	s, ts := newTestServer(t,
		Config{QueryCache: 2, MaxInFlight: 8, MaxQueue: 64, QueueTimeout: 5 * time.Second,
			ShedP99: time.Hour, PressureInterval: time.Millisecond},
		KB{Name: "app", Source: appKB})

	const workers = 4
	const rounds = 12
	stop := make(chan struct{})
	samplerDone := make(chan struct{})

	// Sampler: merged snapshots must be monotone while the LRU churns.
	sampleErr := make(chan error, 1)
	go func() {
		defer close(samplerDone)
		var lastStarted, lastMass int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := s.EngineMetrics()
			mass := int64(0)
			for _, c := range m.LatencySeconds.Counts {
				mass += c
			}
			if m.Started < lastStarted || mass < lastMass {
				select {
				case sampleErr <- fmt.Errorf("merged snapshot went backwards: started %d->%d, latency mass %d->%d",
					lastStarted, m.Started, lastMass, mass):
				default:
				}
				return
			}
			lastStarted, lastMass = m.Started, mass
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Distinct goals per (worker, round) force constant eviction
				// in the 2-entry cache.
				goal := fmt.Sprintf("app(X, Y, [%d,%d])", w, i)
				r, err := http.Get(ts.URL + "/query/app?" + url.Values{"q": {goal}}.Encode())
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, r.Body)
				r.Body.Close()
				if r.StatusCode != 200 {
					t.Errorf("worker %d round %d: status %d", w, i, r.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-samplerDone
	select {
	case err := <-sampleErr:
		t.Fatal(err)
	default:
	}

	if got := s.Metrics().HistogramRegressions; got != 0 {
		t.Fatalf("pressure monitor clamped %d regressions; merged snapshot is not monotone", got)
	}
	// Runs that begin on an engine after its eviction snapshot are lost by
	// design (a bounded undercount, preferred over phantom in-flight), so
	// the merged Started can trail the true count — but most history must
	// survive retirement, and it must never exceed the truth.
	m := s.EngineMetrics()
	if m.Started < workers*rounds/2 || m.Started > workers*rounds {
		t.Fatalf("merged Started = %d, want within [%d, %d]", m.Started, workers*rounds/2, workers*rounds)
	}
}
