package serve

import "sync/atomic"

// quotaTable enforces per-tenant concurrency ceilings ahead of the global
// admission gate. The global gate protects the process; quotas protect
// tenants from each other — a tenant already running its full provision is
// shed with its own reason (tenant_quota) before it can occupy queue or
// execution capacity another tenant could use. The table is built
// immutably at server construction (tenant configuration is static), so
// admission costs one map lookup and one atomic add, lock-free.
type quotaTable struct {
	byName map[string]*tenantSlots
}

type tenantSlots struct {
	limit int64
	used  atomic.Int64
}

func newQuotaTable(cfg Config) *quotaTable {
	q := &quotaTable{byName: map[string]*tenantSlots{}}
	add := func(name string, limit int) {
		if limit > 0 {
			q.byName[name] = &tenantSlots{limit: int64(limit)}
		}
	}
	add(cfg.DefaultTenant.Name, cfg.DefaultTenant.MaxConcurrent)
	for name, t := range cfg.Tenants {
		add(name, t.MaxConcurrent)
	}
	return q
}

// tryAcquire claims one of the tenant's provisioned slots, returning the
// matching release (call exactly once). Tenants without a MaxConcurrent
// are unlimited and get a no-op release. The slot is held for the
// request's whole admitted life — a parked paginated cursor keeps counting
// against its tenant until the stream finishes or expires, exactly like it
// keeps holding its global execution slot.
func (q *quotaTable) tryAcquire(name string) (func(), bool) {
	ts, ok := q.byName[name]
	if !ok {
		return func() {}, true
	}
	if ts.used.Add(1) > ts.limit {
		ts.used.Add(-1)
		return nil, false
	}
	var released atomic.Bool
	return func() {
		if !released.Swap(true) {
			ts.used.Add(-1)
		}
	}, true
}
