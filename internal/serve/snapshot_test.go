package serve

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"symbol"
)

// mustSnapshot compiles src (posing goal when non-empty) and returns its
// snapshot bytes — the fixture builder for the snapshot-fed serve paths.
func mustSnapshot(t *testing.T, src, goal string) []byte {
	t.Helper()
	var opts []symbol.LoadOption
	if goal != "" {
		opts = append(opts, symbol.WithGoal(goal))
	}
	prog, err := symbol.Load(context.Background(), []byte(src), opts...)
	if err != nil {
		t.Fatalf("compiling snapshot fixture: %v", err)
	}
	return prog.Snapshot()
}

func TestKBFromSnapshot(t *testing.T) {
	snap := mustSnapshot(t, appKB, "")
	_, ts := newTestServer(t, Config{}, KB{Name: "app", Snapshot: snap})

	r, err := http.Get(ts.URL + "/run/app")
	if err != nil {
		t.Fatal(err)
	}
	resp := decode(t, r)
	if r.StatusCode != http.StatusOK || resp.Output != "[1,2,3]\n" {
		t.Fatalf("run = %d %q", r.StatusCode, resp.Output)
	}

	// The snapshot's embedded source must back /query.
	r, err = http.Post(ts.URL+"/query/app", "text/plain", strings.NewReader("app([9],[],X)"))
	if err != nil {
		t.Fatal(err)
	}
	resp = decode(t, r)
	if r.StatusCode != http.StatusOK || resp.Output != "X = [9]\n" {
		t.Fatalf("query = %d %q", r.StatusCode, resp.Output)
	}
}

func TestSnapshotDirPreload(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "app.sym"), mustSnapshot(t, appKB, ""), 0o644); err != nil {
		t.Fatal(err)
	}
	// A query snapshot warms the compiled-query tier instead of adding a KB.
	if err := os.WriteFile(filepath.Join(dir, "warm.sym"), mustSnapshot(t, appKB, "app([7],[],X)"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A corrupt file must be skipped, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "bad.sym"), []byte("SYMSNAP\x1agarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Non-.sym files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	var logged []string
	cfg := Config{SnapshotDir: dir, Logf: func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) }}
	s, ts := newTestServer(t, cfg)

	if _, ok := s.kbs["app"]; !ok {
		t.Fatalf("snapshot dir did not register kb app; names=%v", s.names)
	}
	if _, ok := s.kbs["bad"]; ok {
		t.Fatal("corrupt snapshot registered as a kb")
	}
	if s.cache.lookupWarm(appKB, "app([7],[],X)") == nil {
		t.Fatal("query snapshot did not warm the cache")
	}

	r, err := http.Get(ts.URL + "/run/app")
	if err != nil {
		t.Fatal(err)
	}
	resp := decode(t, r)
	if r.StatusCode != http.StatusOK || resp.Output != "[1,2,3]\n" {
		t.Fatalf("run = %d %q", r.StatusCode, resp.Output)
	}

	// The warmed (kb, goal) must answer through the snapshot-fed entry.
	r, err = http.Post(ts.URL+"/query/app", "text/plain", strings.NewReader("app([7],[],X)"))
	if err != nil {
		t.Fatal(err)
	}
	resp = decode(t, r)
	if r.StatusCode != http.StatusOK || resp.Output != "X = [7]\n" {
		t.Fatalf("warmed query = %d %q", r.StatusCode, resp.Output)
	}

	var loadLines, skipLines int
	for _, l := range logged {
		if strings.Contains(l, "ms") && strings.Contains(l, "snapshot") {
			loadLines++
		}
		if strings.Contains(l, "skipped") {
			skipLines++
		}
	}
	if loadLines < 2 {
		t.Errorf("expected per-file load-ms log lines, got %q", logged)
	}
	if skipLines != 1 {
		t.Errorf("expected one skip line for bad.sym, got %q", logged)
	}
}

// A corrupt warm entry must degrade to a normal compile, not an error.
func TestWarmTierFallsBackOnCorruption(t *testing.T) {
	s, ts := newTestServer(t, Config{}, KB{Name: "app", Source: appKB})
	s.cache.addWarm(appKB, "app([5],[],X)", []byte("SYMSNAP\x1abroken"))

	r, err := http.Post(ts.URL+"/query/app", "text/plain", strings.NewReader("app([5],[],X)"))
	if err != nil {
		t.Fatal(err)
	}
	resp := decode(t, r)
	if r.StatusCode != http.StatusOK || resp.Output != "X = [5]\n" {
		t.Fatalf("query = %d %q", r.StatusCode, resp.Output)
	}
}
