// Package serve is the fault-tolerant query-serving front end over
// symbol.Engine: the layer that stands between real traffic and the
// engine's pooled executors. Its jobs, in request order:
//
//   - Admission control: a bounded in-flight semaphore fronted by a
//     bounded, deadline-aware wait queue (admission.go). Overload turns
//     into fast 429/503 + Retry-After responses instead of unbounded
//     goroutine pileup.
//   - Load shedding: a windowed p99 monitor over the engines' latency
//     histograms (pressure.go) proactively rejects new work while the
//     backend is slow *now*, keeping admitted requests' latency bounded.
//   - Budget enforcement: every request runs under a tenant envelope
//     (tenant.go) — step, memory and wall-clock ceilings that request
//     headers can tighten but never raise.
//   - Typed failure mapping: every fault.Kind has a deliberate HTTP
//     status (status.go); handlers are panic-isolated, so no query can
//     take the process down.
//   - Graceful drain: BeginDrain stops admissions, Drain waits for
//     in-flight runs and hard-cancels stragglers as typed fault.Canceled
//     within the drain deadline — every accepted request still gets a
//     response.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"symbol"
	"symbol/internal/fault"
	"symbol/internal/obs"
)

// Config tunes the front end. The zero value gets sensible defaults from
// withDefaults; all durations are per-request unless noted.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (default
	// GOMAXPROCS: the engine's RunAll fan-out width).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot (default
	// 4×MaxInFlight). Beyond it requests shed with 429 queue_full.
	MaxQueue int
	// QueueTimeout bounds how long a request may wait for admission
	// (default 1s). Past it the request sheds with 429 queue_timeout.
	QueueTimeout time.Duration
	// RequestTimeout is the default wall-clock budget of one query
	// (default 5s); tenants and the X-Symbol-Timeout header tighten it.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: how long Drain waits for
	// in-flight queries before hard-cancelling them (default 10s).
	DrainTimeout time.Duration
	// ShedP99 sheds new work while the windowed p99 of completed runs
	// exceeds it (0 = pressure shedding off).
	ShedP99 time.Duration
	// PressureInterval is the p99 window length (default 250ms).
	PressureInterval time.Duration
	// RetryAfter is the hint sent on shed responses (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds a query body (default 1 MiB).
	MaxBodyBytes int64
	// QueryCache is the LRU capacity of compiled (kb, goal) engines
	// (default 64).
	QueryCache int
	// CacheBudgetBytes bounds the estimated resident footprint of the
	// compiled-query engine cache (default 2 GiB): machine-image words held
	// by each engine's state pool plus its code and predecoded streams. The
	// LRU evicts past the budget even when the entry count is still under
	// QueryCache — entry count is a poor proxy for memory when one engine's
	// pool holds multi-hundred-megabyte states.
	CacheBudgetBytes int64
	// Dispatch selects the execution core every query runs under
	// (legacy, nofuse, fused, threaded; default auto).
	Dispatch symbol.Dispatch
	// BatchWindow is how long an admitted single-shot query may park
	// waiting for coalescing company (default 2ms). A window closes early
	// when its batch fills (MaxBatch); when every admitted request is
	// already parked it closes after a short linger (a small fraction of
	// the window), so an idle server answers a lone query in well under
	// the full window's latency.
	BatchWindow time.Duration
	// MaxBatch bounds the members of one coalesced batch (default
	// MaxInFlight).
	MaxBatch int
	// DisableBatching turns request coalescing off: every single-shot query
	// gets its own engine run.
	DisableBatching bool
	// NegCacheTTL bounds how long a (kb, goal) compile error stays
	// negatively cached (default 5s). After it a retry recompiles, so a
	// fixed KB reload or a transient resource-shaped failure cannot poison
	// the key forever.
	NegCacheTTL time.Duration
	// CursorTTL bounds how long a paginated query's suspended stream stays
	// parked waiting for the next page (default 30s). A parked stream holds
	// its admission slot and a pooled machine state, so expiry is the
	// backstop against clients that never fetch the rest.
	CursorTTL time.Duration
	// SnapshotDir names a directory of .sym snapshot files preloaded at
	// boot (see symbol.Load). Program snapshots become knowledge bases
	// named after their file; query snapshots pre-warm the compiled-query
	// tier, so the first request for that (kb, goal) loads the snapshot
	// instead of compiling. Files that fail to load are logged and
	// skipped — a corrupt snapshot must not keep the server down.
	SnapshotDir string
	// DefaultTenant is the budget envelope of requests without an
	// X-Symbol-Tenant header; Tenants maps named envelopes.
	DefaultTenant Tenant
	Tenants       map[string]Tenant
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.PressureInterval <= 0 {
		c.PressureInterval = 250 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.QueryCache <= 0 {
		c.QueryCache = 64
	}
	if c.CacheBudgetBytes <= 0 {
		c.CacheBudgetBytes = 2 << 30
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = c.MaxInFlight
	}
	if c.NegCacheTTL <= 0 {
		c.NegCacheTTL = 5 * time.Second
	}
	if c.CursorTTL <= 0 {
		c.CursorTTL = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// KB is one preloaded knowledge base: a named Prolog source served at
// /run/{name} (its own main/0, pooled engine) and queryable at
// /query/{name} (arbitrary goals, compiled-query LRU).
//
// Snapshot, when set, is a binary program snapshot (symbol.Load format):
// the KB loads from it instead of compiling Source, and the snapshot's
// embedded source backfills Source when the latter is empty so /query
// still works. If the snapshot fails to load and Source is non-empty, the
// KB falls back to compiling Source.
type KB struct {
	Name     string
	Source   string
	Snapshot []byte
}

type kbEntry struct {
	name   string
	source string
	eng    *symbol.Engine // nil when the source has no runnable main/0
	runErr error          // why eng is nil
}

// Server is the front end. It implements http.Handler; build one with New,
// mount it, and call Drain on shutdown.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	kbs   map[string]*kbEntry
	names []string

	met     obs.ServerMetrics
	gate    *gate
	mon     *monitor
	cache   *engineCache
	cursors *cursorTable
	quotas  *quotaTable
	batch   *batcher // nil when batching is disabled

	draining    atomic.Bool
	drainCtx    context.Context
	drainCancel context.CancelFunc
	flight      *inflightTracker
}

// New builds a Server over the given knowledge bases. A KB whose source
// cannot be compiled standalone (for example, it defines no main/0) is
// still registered for /query; its /run endpoint reports the compile error.
func New(cfg Config, kbs ...KB) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		kbs: map[string]*kbEntry{},
	}
	s.cache = newEngineCache(cfg.QueryCache, cfg.CacheBudgetBytes, cfg.NegCacheTTL)
	for _, kb := range kbs {
		if kb.Name == "" {
			return nil, fmt.Errorf("serve: knowledge base with empty name")
		}
		if _, dup := s.kbs[kb.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate knowledge base %q", kb.Name)
		}
		e := &kbEntry{name: kb.Name, source: kb.Source}
		var prog *symbol.Program
		var err error
		if len(kb.Snapshot) > 0 {
			start := time.Now()
			prog, err = symbol.Load(context.Background(), kb.Snapshot)
			if err == nil {
				if e.source == "" {
					e.source = prog.Source()
				}
				cfg.Logf("serve: kb %s: snapshot loaded in %.2fms", kb.Name, msSince(start))
			} else if kb.Source != "" {
				cfg.Logf("serve: kb %s: snapshot rejected (%v), compiling source", kb.Name, err)
				prog, err = symbol.Load(context.Background(), []byte(kb.Source))
			}
		} else {
			prog, err = symbol.Load(context.Background(), []byte(kb.Source))
		}
		if err != nil {
			e.runErr = err
		} else {
			e.eng = symbol.NewEngine(prog)
		}
		s.kbs[kb.Name] = e
		s.names = append(s.names, kb.Name)
	}
	if cfg.SnapshotDir != "" {
		if err := s.loadSnapshotDir(cfg.SnapshotDir); err != nil {
			return nil, err
		}
	}
	sort.Strings(s.names)
	s.gate = newGate(cfg.MaxInFlight, cfg.MaxQueue, &s.met)
	s.mon = newMonitor(s.EngineMetrics, &s.met, cfg.ShedP99, cfg.PressureInterval)
	s.cursors = newCursorTable(cfg.CursorTTL, &s.met)
	s.quotas = newQuotaTable(cfg)
	s.flight = newInflightTracker()
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	if !cfg.DisableBatching {
		s.batch = newBatcher(s)
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.protect(s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.protect(s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.protect(s.handleMetrics))
	s.mux.HandleFunc("GET /kbs", s.protect(s.handleKBs))
	s.mux.HandleFunc("GET /run/{kb}", s.protect(s.handleRun))
	s.mux.HandleFunc("POST /run/{kb}", s.protect(s.handleRun))
	s.mux.HandleFunc("GET /query/{kb}", s.protect(s.handleQuery))
	s.mux.HandleFunc("POST /query/{kb}", s.protect(s.handleQuery))
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// KBNames lists the preloaded knowledge bases (sorted), including those
// loaded from Config.SnapshotDir.
func (s *Server) KBNames() []string { return append([]string(nil), s.names...) }

// loadSnapshotDir preloads every .sym file under dir at boot: program
// snapshots become knowledge bases named after their file, query snapshots
// pre-warm the compiled-query tier for their (source, goal). Each file's
// load time is logged — the whole point of snapshots is cold-start, so the
// cost is worth a line. A file that fails to load is logged and skipped:
// one corrupt snapshot must not keep the server from starting.
func (s *Server) loadSnapshotDir(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("serve: snapshot dir: %w", err)
	}
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".sym") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			s.cfg.Logf("serve: snapshot %s: %v (skipped)", ent.Name(), err)
			continue
		}
		start := time.Now()
		prog, err := symbol.Load(context.Background(), data)
		if err != nil {
			s.cfg.Logf("serve: snapshot %s: %v (skipped)", ent.Name(), err)
			continue
		}
		if goal := prog.Goal(); goal != "" {
			s.cache.addWarm(prog.Source(), goal, data)
			s.cfg.Logf("serve: snapshot %s: query %q warmed in %.2fms", ent.Name(), goal, msSince(start))
			continue
		}
		name := strings.TrimSuffix(ent.Name(), ".sym")
		if _, dup := s.kbs[name]; dup {
			return fmt.Errorf("serve: snapshot %s: duplicate knowledge base %q", ent.Name(), name)
		}
		s.kbs[name] = &kbEntry{name: name, source: prog.Source(), eng: symbol.NewEngine(prog)}
		s.names = append(s.names, name)
		s.cfg.Logf("serve: snapshot %s: kb %s loaded in %.2fms", ent.Name(), name, msSince(start))
	}
	return nil
}

// msSince is time since start in milliseconds, for load-time log lines.
func msSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

// engines lists every live engine (preloaded KBs plus cached query
// engines), for metrics merging and the pressure monitor.
func (s *Server) engines() []*symbol.Engine {
	var out []*symbol.Engine
	for _, name := range s.names {
		if e := s.kbs[name].eng; e != nil {
			out = append(out, e)
		}
	}
	return append(out, s.cache.engines()...)
}

// Metrics snapshots the server-side counters (queue, sheds, drain state).
func (s *Server) Metrics() obs.ServerSnapshot { return s.met.Snapshot() }

// EngineMetrics merges every live engine's snapshot into one, plus the
// retained final snapshots of engines the query cache has evicted — so the
// merged view is monotone over the server's lifetime even as the LRU
// churns.
func (s *Server) EngineMetrics() obs.Snapshot {
	// The cache view is read under one lock so eviction cannot move an
	// engine's history between the retired accumulator and the live list
	// mid-read; the per-KB engines are never evicted, so merging them
	// afterwards stays monotone.
	merged := s.cache.mergedMetrics()
	for _, name := range s.names {
		if e := s.kbs[name].eng; e != nil {
			merged.Merge(e.Metrics())
		}
	}
	return merged
}

// PublishExpvar registers each preloaded KB engine as <prefix>_<kb> and the
// server counters as <prefix> on /debug/vars. Conflicts are logged, never
// fatal (engine publication is idempotent per engine).
func (s *Server) PublishExpvar(prefix string) {
	if v := expvar.Get(prefix); v == nil {
		expvar.Publish(prefix, expvar.Func(func() any { return s.met.Snapshot() }))
	} else {
		s.cfg.Logf("serve: expvar name %q already registered, skipping server vars", prefix)
	}
	for _, name := range s.names {
		if e := s.kbs[name].eng; e != nil {
			if err := e.PublishExpvar(prefix + "_" + name); err != nil {
				s.cfg.Logf("serve: %v", err)
			}
		}
	}
}

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool { return s.draining.Load() }

// BeginDrain stops admitting new queries: every subsequent request sheds
// with 503 + Retry-After. Idempotent; in-flight queries keep running.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.met.SetDraining(true)
		s.cfg.Logf("serve: draining — admissions stopped")
	}
}

// Drain gracefully winds the server down: stop admissions, wait for
// in-flight queries to finish, and when ctx expires first hard-cancel the
// stragglers (they terminate as typed fault.Canceled and still get
// responses). It returns once every admitted request has been answered and
// the engines are idle; a non-nil error means stragglers survived even the
// hard cancel.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := s.flight.beginDrain()
	select {
	case <-done:
	case <-ctx.Done():
		s.cfg.Logf("serve: drain deadline — hard-cancelling in-flight queries")
		s.drainCancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			return errors.New("serve: drain: queries still in flight after hard cancel")
		}
	}
	// Parked cursors hold engine in-flight slots and pooled states; close
	// them now that no request is mid-page, or WaitIdle below never
	// returns. (Resumes in progress were either counted by the flight
	// tracker and have settled, or shed at the draining gate.)
	s.cursors.closeAll()
	// Engines idle ⇒ final metrics are exact and no executor is mid-run.
	idleCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, e := range s.engines() {
		if err := e.WaitIdle(idleCtx); err != nil {
			return fmt.Errorf("serve: drain: engine not idle: %w", err)
		}
	}
	s.cfg.Logf("serve: drained")
	return nil
}

// Close hard-cancels everything immediately (tests and last-resort paths).
func (s *Server) Close() error {
	s.BeginDrain()
	s.drainCancel()
	s.cursors.closeAll()
	return nil
}

// Response is the JSON body of /run and /query answers. OK distinguishes a
// proven goal from a clean "no" — both are 200s; errors carry the fault
// kind (stable fault.Kind string) and a message.
//
// Paginated queries (?limit=N) answer with Solutions instead of Output:
// one entry per solution in this page, More reporting whether backtracking
// may yield further answers, and (when More) an opaque single-use Cursor
// for the next page. A More response without a Cursor means the stream
// could not be parked (the server began draining); re-issue the query
// against another replica.
type Response struct {
	OK     bool   `json:"ok"`
	KB     string `json:"kb,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	Output string `json:"output,omitempty"`
	Steps  int64  `json:"steps,omitempty"`
	WallNS int64  `json:"wall_ns,omitempty"`
	Fault  string `json:"fault,omitempty"`
	Error  string `json:"error,omitempty"`

	Solutions []Solution `json:"solutions,omitempty"`
	More      bool       `json:"more,omitempty"`
	Cursor    string     `json:"cursor,omitempty"`
}

// Solution is one streamed answer of a paginated query. Steps is the
// stream's cumulative step count when this solution was produced (budgets
// span the whole stream, so the last entry is the total so far).
type Solution struct {
	Output string `json:"output"`
	Steps  int64  `json:"steps"`
}

// ShedReasonHeader carries the obs.ShedReason name on shed responses.
const ShedReasonHeader = "X-Symbol-Shed-Reason"

func (s *Server) writeJSON(w http.ResponseWriter, status int, resp Response) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
	s.met.RecordStatus(status)
}

// shed refuses the request before execution: Retry-After plus the reason,
// as a typed header and in the body.
func (s *Server) shed(w http.ResponseWriter, status int, reason obs.ShedReason) {
	s.met.RecordShed(reason)
	w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.RetryAfter.Seconds()+0.999)))
	w.Header().Set(ShedReasonHeader, reason.String())
	s.writeJSON(w, status, Response{Error: "overloaded: " + reason.String()})
}

// protect is the panic-isolation middleware: a panicking handler answers
// 500 (best-effort) and the process keeps serving.
func (s *Server) protect(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.met.RecordPanic()
				s.cfg.Logf("serve: panic in %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				s.writeJSON(w, http.StatusInternalServerError, Response{Error: "internal error"})
			}
		}()
		h(w, r)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.mon.overloadedNow():
		http.Error(w, fmt.Sprintf("overloaded: window p99 %v", s.mon.p99()), http.StatusServiceUnavailable)
	case s.gate.depth() >= int64(s.cfg.MaxQueue):
		http.Error(w, "overloaded: admission queue full", http.StatusServiceUnavailable)
	default:
		io.WriteString(w, "ready\n")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if name := r.URL.Query().Get("kb"); name != "" {
		kb, ok := s.kbs[name]
		if !ok || kb.eng == nil {
			http.Error(w, "unknown or query-only kb", http.StatusNotFound)
			return
		}
		kb.eng.Metrics().WriteTo(w)
		return
	}
	s.EngineMetrics().WriteTo(w)
	s.met.Snapshot().WriteTo(w)
}

func (s *Server) handleKBs(w http.ResponseWriter, r *http.Request) {
	type kbInfo struct {
		Name     string `json:"name"`
		Runnable bool   `json:"runnable"` // has a compiled main/0 for /run
		RunError string `json:"run_error,omitempty"`
	}
	out := make([]kbInfo, 0, len(s.names))
	for _, name := range s.names {
		kb := s.kbs[name]
		info := kbInfo{Name: name, Runnable: kb.eng != nil}
		if kb.runErr != nil {
			info.RunError = kb.runErr.Error()
		}
		out = append(out, info)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
	s.met.RecordStatus(http.StatusOK)
}

// handleRun answers the KB's own main/0 on its preloaded, pooled engine —
// the hot serving path.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	kb, ok := s.kbs[r.PathValue("kb")]
	if !ok {
		s.writeJSON(w, http.StatusNotFound, Response{Error: "unknown kb"})
		return
	}
	if kb.eng == nil {
		s.writeJSON(w, http.StatusBadRequest, Response{
			KB: kb.name, Error: fmt.Sprintf("kb is not runnable: %v", kb.runErr),
		})
		return
	}
	s.serveQuery(w, r, kb.name, func() (*symbol.Engine, func(), error) { return kb.eng, func() {}, nil })
}

// handleQuery compiles an arbitrary goal against the KB (through the LRU of
// compiled query engines) and answers it: the first solution by default, a
// page of solutions with ?limit=N (plus a resume cursor while more remain),
// and the next page of a parked stream with ?cursor=....
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	kb, ok := s.kbs[r.PathValue("kb")]
	if !ok {
		s.writeJSON(w, http.StatusNotFound, Response{Error: "unknown kb"})
		return
	}
	if cursor := r.URL.Query().Get("cursor"); cursor != "" {
		s.resumeQuery(w, r, kb.name, cursor)
		return
	}
	goal := r.URL.Query().Get("q")
	if r.Method == http.MethodPost {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			s.writeJSON(w, http.StatusRequestEntityTooLarge, Response{KB: kb.name, Error: "query body too large"})
			return
		}
		if b := strings.TrimSpace(string(body)); b != "" {
			goal = b
		}
	}
	if strings.TrimSpace(goal) == "" {
		s.writeJSON(w, http.StatusBadRequest, Response{KB: kb.name, Error: "empty query (POST a goal, or use ?q=)"})
		return
	}
	if ls := r.URL.Query().Get("limit"); ls != "" {
		limit, err := strconv.Atoi(ls)
		if err != nil || limit <= 0 {
			s.writeJSON(w, http.StatusBadRequest, Response{KB: kb.name, Error: "limit must be a positive integer"})
			return
		}
		s.servePaged(w, r, kb.name, limit, func() (*symbol.Engine, error) {
			return s.cache.get(kb.name, kb.source, goal)
		})
		return
	}
	// Single-shot queries pin their cache entry for the handler's lifetime:
	// a coalesced request parks for a batching window before its run starts,
	// and eviction retiring the engine's metrics in that window would lose
	// the run from the merged view.
	s.serveQuery(w, r, kb.name, func() (*symbol.Engine, func(), error) {
		return s.cache.getPinned(kb.name, kb.source, goal)
	})
}

// admission is what admit hands a handler that made it past every gate:
// the request's budget envelope and the admission-slot release, which the
// handler must arrange to be called exactly once (immediately for
// single-shot queries; when the session closes for paginated ones).
type admission struct {
	tenant  Tenant
	opts    symbol.RunOptions
	timeout time.Duration
	release func()
}

// admit runs the shared request preamble — tenant resolution, budget, the
// drain/pressure/queue gates, and in-flight registration — writing the
// refusal response itself when a gate rejects. On true the caller holds an
// execution slot (adm.release) and a flight-tracker registration (balance
// with s.flight.exit()).
func (s *Server) admit(w http.ResponseWriter, r *http.Request, kbName string) (adm admission, ok bool) {
	tenant, err := s.tenantOf(r)
	if err != nil {
		var bad *badRequestError
		errors.As(err, &bad)
		s.writeJSON(w, bad.status, Response{KB: kbName, Error: bad.msg})
		return
	}
	opts, timeout, err := s.budget(r, tenant)
	if err != nil {
		var bad *badRequestError
		errors.As(err, &bad)
		s.writeJSON(w, bad.status, Response{KB: kbName, Tenant: tenant.Name, Error: bad.msg})
		return
	}

	// Admission: drain gate, pressure gate, then the bounded queue.
	if s.draining.Load() {
		s.shed(w, http.StatusServiceUnavailable, obs.ShedDraining)
		return
	}
	if s.mon.overloadedNow() {
		s.shed(w, http.StatusServiceUnavailable, obs.ShedPressure)
		return
	}
	// Tenant quota sits above the global gate: a tenant already running its
	// full provision sheds here, before it can consume queue or execution
	// capacity other tenants are entitled to.
	relQuota, quotaOK := s.quotas.tryAcquire(tenant.Name)
	if !quotaOK {
		s.shed(w, http.StatusTooManyRequests, obs.ShedTenantQuota)
		return
	}
	release, err := s.gate.acquire(r.Context(), s.cfg.QueueTimeout)
	if err != nil {
		relQuota()
		switch {
		case errors.Is(err, errQueueFull):
			s.shed(w, http.StatusTooManyRequests, obs.ShedQueueFull)
		case errors.Is(err, errQueueTimeout):
			s.shed(w, http.StatusTooManyRequests, obs.ShedQueueTimeout)
		default: // client gave up while queued
			s.met.RecordClientGone()
			s.writeJSON(w, StatusClientClosed, Response{KB: kbName, Error: "client closed request"})
		}
		return
	}
	// Registering with the in-flight tracker re-checks drain under its
	// lock: a request admitted at the instant draining begins sheds here
	// instead of slipping past the drain wait.
	if !s.flight.enter() {
		release()
		relQuota()
		s.shed(w, http.StatusServiceUnavailable, obs.ShedDraining)
		return
	}
	rel := func() {
		release()
		relQuota()
	}
	return admission{tenant: tenant, opts: opts, timeout: timeout, release: rel}, true
}

// serveQuery is the admission → budget → run → respond state machine shared
// by /run and single-solution /query.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, kbName string, getEngine func() (*symbol.Engine, func(), error)) {
	adm, ok := s.admit(w, r, kbName)
	if !ok {
		return
	}
	defer func() {
		adm.release()
		s.flight.exit()
	}()

	eng, unpin, err := getEngine()
	defer unpin()
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, Response{KB: kbName, Tenant: adm.tenant.Name, Error: err.Error()})
		return
	}

	if s.batch != nil {
		// Coalesced path: park in the engine's batch and wait for the
		// shared run's answer. The wall budget travels in the run options
		// (so a timeout is the typed fault.Deadline), and drain hard-cancel
		// reaches the run through the batch context, so the background
		// runCtx below never owes writeRunError a deadline.
		res, err := s.batch.submit(r.Context(), eng, adm.opts, adm.timeout)
		if err != nil {
			s.writeRunError(w, r, context.Background(), kbName, adm.tenant.Name, err)
			return
		}
		s.writeJSON(w, http.StatusOK, Response{
			OK:     res.Succeeded,
			KB:     kbName,
			Tenant: adm.tenant.Name,
			Output: res.Output,
			Steps:  res.Steps,
			WallNS: int64(res.Stats.Wall),
		})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), adm.timeout)
	defer cancel()
	// Hard drain cancels this run (it terminates as typed fault.Canceled).
	stop := context.AfterFunc(s.drainCtx, cancel)
	defer stop()

	res, err := eng.Run(ctx, adm.opts)
	if err != nil {
		s.writeRunError(w, r, ctx, kbName, adm.tenant.Name, err)
		return
	}
	s.writeJSON(w, http.StatusOK, Response{
		OK:     res.Succeeded,
		KB:     kbName,
		Tenant: adm.tenant.Name,
		Output: res.Output,
		Steps:  res.Steps,
		WallNS: int64(res.Stats.Wall),
	})
}

// servePaged answers the first page of a paginated query: admit, start a
// Solutions stream, collect up to limit solutions within the request's
// wall budget, and either finish the stream or park it behind a cursor.
// The admission slot is not released on return — a parked stream keeps
// holding it (suspended runs count against in-flight admission) until the
// stream finishes, its cursor expires, or drain sweeps it.
func (s *Server) servePaged(w http.ResponseWriter, r *http.Request, kbName string, limit int, getEngine func() (*symbol.Engine, error)) {
	adm, ok := s.admit(w, r, kbName)
	if !ok {
		return
	}
	defer s.flight.exit()

	eng, err := getEngine()
	if err != nil {
		adm.release()
		s.writeJSON(w, http.StatusBadRequest, Response{KB: kbName, Tenant: adm.tenant.Name, Error: err.Error()})
		return
	}

	// The stream outlives this request, so it runs under a session-lifetime
	// context rather than r.Context() (which dies with this response):
	// cancelled when the session closes and, via AfterFunc, by hard drain —
	// which aborts any in-progress page as typed fault.Canceled.
	sctx, scancel := context.WithCancel(context.Background())
	stopDrain := context.AfterFunc(s.drainCtx, scancel)
	sols, err := eng.Query(sctx, adm.opts)
	if err != nil {
		scancel()
		stopDrain()
		adm.release()
		s.writeJSON(w, http.StatusBadRequest, Response{KB: kbName, Tenant: adm.tenant.Name, Error: err.Error()})
		return
	}
	sess := &cursorSession{
		kb:        kbName,
		tenant:    adm.tenant.Name,
		timeout:   adm.timeout,
		limit:     limit,
		ctx:       sctx,
		cancel:    scancel,
		stopDrain: stopDrain,
		sols:      sols,
		release:   adm.release,
	}
	s.servePage(w, r, sess, limit)
}

// resumeQuery continues a parked paginated stream. The cursor is
// single-use: claiming it removes the session from the table (so two
// clients can never drive the same suspended machine), and a page that
// leaves more solutions parks the session again under a fresh cursor.
// Resumes skip the pressure and queue gates — the session has held its
// execution slot since its first page — but respect the drain gate.
func (s *Server) resumeQuery(w http.ResponseWriter, r *http.Request, kbName, cursor string) {
	if s.draining.Load() {
		s.shed(w, http.StatusServiceUnavailable, obs.ShedDraining)
		return
	}
	sess, ok := s.cursors.take(cursor)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, Response{KB: kbName, Error: "unknown, expired, or already-claimed cursor"})
		return
	}
	if sess.kb != kbName {
		// Wrong kb in the path. Repark under the same cursor so the typo
		// does not burn the stream.
		if !s.cursors.putBack(sess) {
			sess.close()
		}
		s.writeJSON(w, http.StatusNotFound, Response{KB: kbName, Error: "cursor does not belong to this kb"})
		return
	}
	limit := sess.limit
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 {
			if !s.cursors.putBack(sess) {
				sess.close()
			}
			s.writeJSON(w, http.StatusBadRequest, Response{KB: kbName, Error: "limit must be a positive integer"})
			return
		}
		limit = n
	}
	if !s.flight.enter() {
		// Draining began after the gate check above; the drain sweep cannot
		// see a claimed session, so close it here and shed.
		sess.close()
		s.shed(w, http.StatusServiceUnavailable, obs.ShedDraining)
		return
	}
	defer s.flight.exit()
	s.servePage(w, r, sess, limit)
}

// servePage drives one page of sess's stream within the request's wall
// budget, then parks the session (issuing the next cursor) or finishes it,
// and writes the page response. The caller holds a flight-tracker
// registration; sess is claimed (not in the cursor table).
func (s *Server) servePage(w http.ResponseWriter, r *http.Request, sess *cursorSession, limit int) {
	// Page-scoped abort conditions: the request's wall budget and the
	// client connection, plus the session context so a hard drain
	// cancels a page in progress. Any of them firing mid-page kills the
	// stream (a machine cancelled mid-backtrack cannot be resumed), which
	// is the safe reading of "the budget ran out".
	pageCtx, pageCancel := context.WithTimeout(r.Context(), sess.timeout)
	defer pageCancel()
	stop := context.AfterFunc(sess.ctx, pageCancel)
	defer stop()
	sess.sols.Attach(pageCtx)

	var page []Solution
	var wall int64
	for len(page) < limit && sess.sols.Next() {
		res := sess.sols.Result()
		page = append(page, Solution{Output: res.Output, Steps: res.Steps})
		wall = int64(res.Stats.Wall)
	}
	if err := sess.sols.Err(); err != nil {
		sess.close()
		s.writeRunError(w, r, pageCtx, sess.kb, sess.tenant, err)
		return
	}
	resp := Response{
		OK:        len(page) > 0,
		KB:        sess.kb,
		Tenant:    sess.tenant,
		Solutions: page,
		WallNS:    wall,
	}
	if n := len(page); n > 0 {
		resp.Steps = page[n-1].Steps
	}
	if sess.sols.More() {
		resp.More = true
		if id, parked := s.cursors.park(sess); parked {
			resp.Cursor = id
		} else {
			// Drain closed the cursor table while this page ran: the stream
			// cannot be parked. Deliver the page without a cursor; the
			// client re-issues the query against another replica.
			sess.close()
		}
	} else {
		sess.close()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// writeRunError maps a run error onto its typed HTTP response. Canceled is
// refined by cause: a drain cancellation answers 503 + Retry-After (retry
// another replica), a request timeout is the deadline fault's 504, a client
// disconnect is recorded as 499.
func (s *Server) writeRunError(w http.ResponseWriter, r *http.Request, runCtx context.Context, kbName, tenant string, err error) {
	k := fault.KindOf(err)
	status := StatusOf(k)
	if k == fault.Canceled {
		switch {
		case s.drainCtx.Err() != nil:
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.RetryAfter.Seconds()+0.999)))
		case r.Context().Err() != nil:
			s.met.RecordClientGone()
			status = StatusClientClosed
		case errors.Is(runCtx.Err(), context.DeadlineExceeded):
			// The timeout timer cancelled the context before the executor's
			// own deadline poll noticed: same budget, same answer.
			k = fault.Deadline
			status = StatusOf(fault.Deadline)
		}
	}
	resp := Response{KB: kbName, Tenant: tenant, Error: err.Error()}
	if k != fault.None {
		resp.Fault = k.String()
	}
	s.writeJSON(w, status, resp)
}
