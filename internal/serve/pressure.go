package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"symbol/internal/obs"
)

// pressureMinSamples is the fewest completed runs a measurement window must
// hold before its p99 is trusted: a near-empty window would let one slow
// run flip the server into shedding.
const pressureMinSamples = 4

// monitor turns the engines' cumulative latency histograms into a windowed
// overload verdict. Every interval it snapshots and merges the histograms,
// subtracts the previous cut, and estimates the p99 of just that window; if
// the window's p99 crosses the configured threshold the server sheds new
// work until a later window recovers. Using a window (rather than the
// lifetime histogram) means the verdict tracks what the backend is doing
// *now* — a long healthy history cannot mask a fresh collapse, and one bad
// burst does not poison the server forever.
//
// Reads are wait-free: requests load a cached verdict; the request that
// finds the verdict stale refreshes it under a TryLock, so a thundering
// herd never queues behind the histogram copy.
type monitor struct {
	merged    func() obs.Snapshot // one consistent merged view of every engine, live and retired
	met       *obs.ServerMetrics  // regression counter sink (nil = drop)
	threshold time.Duration       // shed when windowed p99 exceeds this (0 = never)
	interval  time.Duration       // verdict refresh cadence

	mu        sync.Mutex // guards last + nextCheck; TryLock on refresh
	last      obs.Histogram
	nextCheck time.Time

	overloaded atomic.Bool
	lastP99    atomic.Int64 // nanoseconds
}

// newMonitor builds a monitor over merged(), which must return one
// consistent all-time snapshot of every engine — live ones plus the
// retained final snapshots of evicted ones, read atomically with respect
// to eviction (engineCache.mergedMetrics). That consistency is what keeps
// consecutive snapshots monotone while the engine set churns; without it,
// an eviction subtracts the evicted engine's whole history from the next
// window. met, when non-nil, receives a count of any clamped regression
// still observed — that counter staying at zero is the monotonicity proof,
// and growth means a source is vanishing without being retired.
func newMonitor(merged func() obs.Snapshot, met *obs.ServerMetrics, threshold, interval time.Duration) *monitor {
	return &monitor{merged: merged, met: met, threshold: threshold, interval: interval}
}

// overloadedNow reports the cached verdict, refreshing it if stale.
func (m *monitor) overloadedNow() bool {
	if m.threshold <= 0 {
		return false
	}
	m.refreshIfStale()
	return m.overloaded.Load()
}

// p99 returns the last measured window's estimated p99 (0 before the first
// window with enough samples).
func (m *monitor) p99() time.Duration {
	return time.Duration(m.lastP99.Load())
}

func (m *monitor) refreshIfStale() {
	if !m.mu.TryLock() {
		return // someone else is refreshing; use the cached verdict
	}
	defer m.mu.Unlock()
	now := time.Now()
	if now.Before(m.nextCheck) {
		return
	}
	m.nextCheck = now.Add(m.interval)

	merged := m.merged()
	window, clamped := merged.LatencySeconds.SubCount(m.last)
	if clamped > 0 && m.met != nil {
		m.met.RecordHistRegression(clamped)
	}
	m.last = merged.LatencySeconds
	if window.Total() < pressureMinSamples {
		// Too little traffic to judge; an idle backend is not overloaded.
		m.overloaded.Store(false)
		return
	}
	q := window.Quantile(0.99)
	var p99 time.Duration
	if math.IsInf(q, 1) {
		// Past the top bucket bound (~0.5 s): saturate rather than overflow.
		p99 = time.Hour
	} else {
		p99 = time.Duration(q * float64(time.Second))
	}
	m.lastP99.Store(int64(p99))
	m.overloaded.Store(p99 > m.threshold)
}
