package serve

import (
	"context"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"symbol/internal/fault"
)

// TestOverloadSheds is the acceptance-criteria overload half: with one
// execution slot and a one-deep queue, a burst of expensive queries must
// split into bounded admitted work (typed 422 step-limit answers) and fast
// 429 sheds carrying Retry-After — and the latency of admitted requests
// must stay bounded by their budgets instead of growing with the burst.
func TestOverloadSheds(t *testing.T) {
	cfg := Config{
		MaxInFlight:  1,
		MaxQueue:     1,
		QueueTimeout: 30 * time.Millisecond,
		// ~20M steps of busy looping per admitted request: tens of
		// milliseconds on any hardware, long enough to force queueing.
		DefaultTenant:  Tenant{MaxSteps: 20_000_000},
		RequestTimeout: 30 * time.Second,
		RetryAfter:     2 * time.Second,
	}
	s, ts := newTestServer(t, cfg, KB{Name: "loop", Source: loopKB})

	const burst = 8
	type outcome struct {
		status     int
		faultName  string
		retryAfter string
		shedReason string
		latency    time.Duration
	}
	outcomes := make([]outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			r, err := http.Get(ts.URL + "/run/loop")
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			resp := decode(t, r)
			outcomes[i] = outcome{
				status:     r.StatusCode,
				faultName:  resp.Fault,
				retryAfter: r.Header.Get("Retry-After"),
				shedReason: r.Header.Get(ShedReasonHeader),
				latency:    time.Since(start),
			}
		}(i)
	}
	wg.Wait()

	var admitted, shed int
	var admittedLat []time.Duration
	for i, o := range outcomes {
		switch o.status {
		case 422:
			admitted++
			admittedLat = append(admittedLat, o.latency)
			if o.faultName != fault.StepLimit.String() {
				t.Errorf("request %d: admitted fault = %q", i, o.faultName)
			}
		case 429, 503:
			shed++
			if o.retryAfter == "" {
				t.Errorf("request %d: shed without Retry-After", i)
			}
			if o.shedReason == "" {
				t.Errorf("request %d: shed without %s header", i, ShedReasonHeader)
			}
			if o.latency > 5*time.Second {
				t.Errorf("request %d: shed took %v — sheds must be fast", i, o.latency)
			}
		default:
			t.Errorf("request %d: unexpected status %d (fault %q)", i, o.status, o.faultName)
		}
	}
	if admitted == 0 {
		t.Error("no request was admitted")
	}
	if shed == 0 {
		t.Error("no request was shed under overload")
	}
	// Admitted p99 (here: worst admitted latency) is bounded by the work
	// budget plus queueing behind at most one other admitted request — far
	// under what serving the whole burst serially would take.
	sort.Slice(admittedLat, func(i, j int) bool { return admittedLat[i] < admittedLat[j] })
	if worst := admittedLat[len(admittedLat)-1]; worst > 15*time.Second {
		t.Errorf("admitted worst-case latency %v not bounded", worst)
	}

	m := s.Metrics()
	if m.ShedTotal() != int64(shed) {
		t.Errorf("shed metrics = %d, observed %d", m.ShedTotal(), shed)
	}
	if m.Admitted != int64(admitted) {
		t.Errorf("admitted metrics = %d, observed %d", m.Admitted, admitted)
	}
	if m.QueueDepth != 0 || m.InFlight != 0 {
		t.Errorf("gauges not drained: %+v", m)
	}
}

// TestGracefulDrain is the acceptance-criteria drain half: with long
// queries in flight, Drain must stop admissions immediately, hard-cancel
// the stragglers at the drain deadline as typed fault.Canceled, and every
// accepted request must still receive a response.
func TestGracefulDrain(t *testing.T) {
	cfg := Config{
		MaxInFlight:    2,
		RequestTimeout: 30 * time.Second, // far beyond the drain deadline
	}
	s, ts := newTestServer(t, cfg, KB{Name: "loop", Source: loopKB})

	// Two infinite queries occupy both slots.
	type outcome struct {
		status int
		resp   Response
		retry  string
	}
	results := make(chan outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			r, err := http.Get(ts.URL + "/run/loop")
			if err != nil {
				t.Errorf("in-flight request failed at transport level: %v", err)
				results <- outcome{}
				return
			}
			results <- outcome{status: r.StatusCode, resp: decode(t, r), retry: r.Header.Get("Retry-After")}
		}()
	}
	waitFor(t, 5*time.Second, func() bool { return s.Metrics().InFlight == 2 })

	// Drain with a short deadline: the loops cannot finish, so they must be
	// hard-cancelled, answered, and the server must settle quickly.
	drainCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("drain took %v", took)
	}

	for i := 0; i < 2; i++ {
		o := <-results
		if o.status != 503 {
			t.Errorf("drained in-flight request: status=%d resp=%+v", o.status, o.resp)
		}
		if o.resp.Fault != fault.Canceled.String() {
			t.Errorf("drained request fault = %q, want %q", o.resp.Fault, fault.Canceled)
		}
		if o.retry == "" {
			t.Errorf("drained request missing Retry-After")
		}
	}

	// After drain: no work in flight, engines idle, new requests shed.
	m := s.Metrics()
	if m.InFlight != 0 || m.QueueDepth != 0 {
		t.Errorf("gauges after drain: %+v", m)
	}
	if !m.Draining {
		t.Error("drain gauge not set")
	}
	if em := s.EngineMetrics(); em.InFlight != 0 {
		t.Errorf("engine in-flight after drain = %d", em.InFlight)
	}
	r, err := http.Get(ts.URL + "/run/loop")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != 503 {
		t.Errorf("post-drain request: status=%d", r.StatusCode)
	}
	if got := r.Header.Get(ShedReasonHeader); got != "draining" {
		t.Errorf("post-drain shed reason = %q", got)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Error("post-drain shed missing Retry-After")
	}
	io.Copy(io.Discard, r.Body)

	// Health flips, queries shed, but metrics stay up for scrapes.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != 503 {
		t.Errorf("healthz while draining: %d", hr.StatusCode)
	}
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if mr.StatusCode != 200 || !strings.Contains(string(body), "symbolserve_draining 1") {
		t.Errorf("metrics while draining: status=%d", mr.StatusCode)
	}
}

// TestDrainCompletesInFlight: queries that can finish inside the drain
// deadline complete normally — drain is graceful, not a kill switch.
func TestDrainCompletesInFlight(t *testing.T) {
	cfg := Config{
		MaxInFlight: 1,
		// The loop query burns its step budget in tens of milliseconds.
		DefaultTenant: Tenant{MaxSteps: 20_000_000},
	}
	s, ts := newTestServer(t, cfg, KB{Name: "loop", Source: loopKB})

	done := make(chan outcome1, 1)
	go func() {
		r, err := http.Get(ts.URL + "/run/loop")
		if err != nil {
			t.Errorf("request: %v", err)
			done <- outcome1{}
			return
		}
		done <- outcome1{status: r.StatusCode, resp: decode(t, r)}
	}()
	waitFor(t, 5*time.Second, func() bool { return s.Metrics().InFlight == 1 })

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	o := <-done
	// The run completed under its own budget: a typed 422, not a 503.
	if o.status != 422 || o.resp.Fault != fault.StepLimit.String() {
		t.Errorf("in-flight run under generous drain: status=%d resp=%+v", o.status, o.resp)
	}
}

type outcome1 struct {
	status int
	resp   Response
}

// TestPressureShedding: a window whose p99 crosses the threshold flips the
// server into shedding; a recovered window lets traffic back in.
func TestPressureShedding(t *testing.T) {
	cfg := Config{
		ShedP99: time.Nanosecond, // any measured p99 trips it
		// Long enough for a window to accumulate pressureMinSamples even
		// when the race detector slows each request to several ms.
		PressureInterval: 50 * time.Millisecond,
		DefaultTenant:    Tenant{MaxSteps: 100_000},
	}
	s, ts := newTestServer(t, cfg, KB{Name: "loop", Source: loopKB})

	// Prime a window with enough completed runs to trust its p99.
	for i := 0; i < 2*pressureMinSamples; i++ {
		r, err := http.Get(ts.URL + "/run/loop")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}
	time.Sleep(2 * cfg.PressureInterval)

	// The monitor now sees a window with p99 > 1ns: shed.
	waitFor(t, 5*time.Second, func() bool {
		r, err := http.Get(ts.URL + "/run/loop")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		io.Copy(io.Discard, r.Body)
		return r.StatusCode == 503 && r.Header.Get(ShedReasonHeader) == "pressure"
	})
	if got := s.Metrics().Shed["pressure"]; got == 0 {
		t.Error("no pressure sheds recorded")
	}
	// readyz mirrors the verdict.
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != 503 {
		t.Errorf("readyz under pressure: %d", r.StatusCode)
	}

	// Quiet windows (no samples) recover: the next refresh clears the
	// verdict because an idle backend is not overloaded.
	waitFor(t, 5*time.Second, func() bool {
		r, err := http.Get(ts.URL + "/run/loop")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		io.Copy(io.Discard, r.Body)
		return r.StatusCode == 422
	})
}

// TestClientDisconnectMidRun: a client abandoning an in-flight query frees
// its slot promptly and is recorded, not crashed on.
func TestClientDisconnectMidRun(t *testing.T) {
	cfg := Config{MaxInFlight: 1, RequestTimeout: 30 * time.Second}
	s, ts := newTestServer(t, cfg, KB{Name: "loop", Source: loopKB})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/run/loop", nil)
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return s.Metrics().InFlight == 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("expected client-side cancellation error")
	}
	// The slot frees up without waiting for the full request timeout.
	waitFor(t, 5*time.Second, func() bool { return s.Metrics().InFlight == 0 })
	waitFor(t, 5*time.Second, func() bool { return s.Metrics().ClientGone == 1 })
}
