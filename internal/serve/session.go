package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"symbol"
	"symbol/internal/obs"
)

// cursorSession is one suspended solution stream parked between pages of a
// paginated /query. The session owns everything the next page needs — the
// stream (whose pooled machine state is live and suspended at the last
// solution), the admission slot it was admitted under, and the budget
// envelope of the original request — plus the plumbing that ties its
// lifetime to the server's: a session context hard-cancelled by drain, and
// a TTL timer that reclaims the slot if the client never comes back.
type cursorSession struct {
	id      string
	kb      string
	tenant  string
	timeout time.Duration // per-page wall budget, from the original request
	limit   int           // default page size, from the original request

	// ctx is the session-lifetime context the stream was created under;
	// cancel fires on close and (via an AfterFunc on the server's drain
	// context) on hard drain, aborting any in-progress page as typed
	// fault.Canceled. stopDrain unhooks that AfterFunc on close.
	ctx       context.Context
	cancel    context.CancelFunc
	stopDrain func() bool

	sols    *symbol.Solutions
	release func()      // the admission slot held since the first page
	timer   *time.Timer // TTL expiry, armed while parked
}

// close tears the session down: cancel the session context, unhook the
// drain trigger, settle the stream (returning its machine state to the
// engine pool), and give the admission slot back. Safe to call exactly
// once per session; the table's take/closeAll claim semantics guarantee a
// single owner.
func (sess *cursorSession) close() {
	sess.cancel()
	if sess.stopDrain != nil {
		sess.stopDrain()
	}
	sess.sols.Close()
	sess.release()
}

// cursorTable maps opaque cursor ids to parked sessions. A session is in
// the table only while idle between pages: resuming claims it (take), and
// parking after a page re-inserts it under a fresh id — so a cursor is
// single-use, two clients can never drive the same suspended machine, and
// a stale cursor (already resumed, expired, or swept by drain) fails
// cleanly instead of corrupting a stream.
type cursorTable struct {
	mu     sync.Mutex
	ttl    time.Duration
	met    *obs.ServerMetrics
	m      map[string]*cursorSession
	closed bool
}

func newCursorTable(ttl time.Duration, met *obs.ServerMetrics) *cursorTable {
	return &cursorTable{ttl: ttl, met: met, m: map[string]*cursorSession{}}
}

// newCursorID returns an unguessable opaque cursor token.
func newCursorID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("serve: cursor id: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// park inserts sess under a fresh id and arms its TTL timer. It reports
// false when the table has been closed by drain — the caller must close
// the session itself (its solutions cannot be parked anymore).
func (t *cursorTable) park(sess *cursorSession) (string, bool) {
	id := newCursorID()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return "", false
	}
	sess.id = id
	t.m[id] = sess
	sess.timer = time.AfterFunc(t.ttl, func() { t.expire(id) })
	t.mu.Unlock()
	t.met.RecordCursorOpened()
	return id, true
}

// take claims the session parked under id, removing it from the table and
// disarming its TTL timer. Only one claimant can win; everyone else sees
// false (unknown, already resumed, expired, or drained).
func (t *cursorTable) take(id string) (*cursorSession, bool) {
	sess, ok := t.remove(id)
	if ok {
		t.met.RecordCursorClosed(false)
	}
	return sess, ok
}

func (t *cursorTable) remove(id string) (*cursorSession, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sess, ok := t.m[id]
	if !ok {
		return nil, false
	}
	delete(t.m, id)
	sess.timer.Stop()
	return sess, true
}

// putBack re-inserts a claimed session under its existing id with a fresh
// TTL timer — for resume paths that reject the request without touching the
// stream (wrong kb, bad limit), so the client's cursor stays valid. It
// reports false when the table has been closed by drain; the caller must
// then close the session.
func (t *cursorTable) putBack(sess *cursorSession) bool {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return false
	}
	t.m[sess.id] = sess
	id := sess.id
	sess.timer = time.AfterFunc(t.ttl, func() { t.expire(id) })
	t.mu.Unlock()
	// Balances the RecordCursorClosed(false) that take charged.
	t.met.RecordCursorOpened()
	return true
}

// expire is the TTL sweep for one cursor: if it is still parked, close it,
// releasing the admission slot and the pooled machine state.
func (t *cursorTable) expire(id string) {
	if sess, ok := t.remove(id); ok {
		t.met.RecordCursorClosed(true)
		sess.close()
	}
}

// closeAll claims and closes every parked session and refuses future
// parks; drain calls it after in-flight requests settle so engine WaitIdle
// can complete (a parked stream holds an engine in-flight slot).
func (t *cursorTable) closeAll() {
	t.mu.Lock()
	t.closed = true
	sessions := make([]*cursorSession, 0, len(t.m))
	for id, sess := range t.m {
		delete(t.m, id)
		sess.timer.Stop()
		sessions = append(sessions, sess)
	}
	t.mu.Unlock()
	for _, sess := range sessions {
		t.met.RecordCursorClosed(false)
		sess.close()
	}
}

// open reports the number of parked sessions (for tests).
func (t *cursorTable) open() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
