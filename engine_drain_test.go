package symbol

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

const loopSrc = `
loop :- loop.
main :- loop.
`

// TestRunAllMidBatchCancel cancels a batch while it is executing: every
// slot must still settle — a Result for runs that finished before the
// cancel, a typed ErrCanceled for runs cut short or never started — and no
// worker goroutine may outlive the call.
func TestRunAllMidBatchCancel(t *testing.T) {
	prog, err := Compile(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	const batch = 16
	runs := make([]RunOptions, batch)

	// Cancel once the batch is demonstrably mid-flight.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(5 * time.Second)
		for eng.Pressure().InFlight == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	out := eng.RunAll(ctx, runs)
	wg.Wait()

	if len(out) != batch {
		t.Fatalf("got %d results for %d runs", len(out), batch)
	}
	var canceled int
	for i, r := range out {
		switch {
		case r.Err != nil:
			if r.Result != nil {
				t.Errorf("slot %d: both Result and Err set", i)
			}
			if !errors.Is(r.Err, ErrCanceled) {
				t.Errorf("slot %d: err=%v, want ErrCanceled", i, r.Err)
			}
			canceled++
		case r.Result == nil:
			t.Errorf("slot %d: neither Result nor Err", i)
		}
	}
	// The program loops forever, so nothing can have completed: the whole
	// batch must have been cut short or never started.
	if canceled != batch {
		t.Errorf("canceled %d of %d slots", canceled, batch)
	}

	idleCtx, idleCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer idleCancel()
	if err := eng.WaitIdle(idleCtx); err != nil {
		t.Errorf("WaitIdle after batch: %v", err)
	}
	if got := eng.Pressure().InFlight; got != 0 {
		t.Errorf("in-flight after settled batch = %d", got)
	}

	// Workers are gone once RunAll returns (allow the runtime a moment to
	// reap exiting goroutines under -race).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, now)
	}
}

// TestWaitIdle covers both sides of the drain primitive: while a run is in
// flight WaitIdle honours its context, and once the run is cancelled it
// returns promptly.
func TestWaitIdle(t *testing.T) {
	prog, err := Compile(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	runCtx, stopRun := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := eng.Run(runCtx, RunOptions{})
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("run: err=%v, want ErrCanceled", err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for eng.Pressure().InFlight == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	shortCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := eng.WaitIdle(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("WaitIdle with work in flight: %v, want DeadlineExceeded", err)
	}

	stopRun()
	<-done
	idleCtx, idleCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer idleCancel()
	if err := eng.WaitIdle(idleCtx); err != nil {
		t.Errorf("WaitIdle after cancel: %v", err)
	}
}

// TestRunAllUncancelledCompletes is the control: without cancellation every
// slot gets a Result and no slot gets an error.
func TestRunAllUncancelledCompletes(t *testing.T) {
	prog, err := Compile(engineSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog)
	out := eng.RunAll(context.Background(), make([]RunOptions, 8))
	for i, r := range out {
		if r.Err != nil {
			t.Errorf("slot %d: %v", i, r.Err)
		}
		if r.Result == nil {
			t.Errorf("slot %d: nil Result", i)
		}
	}
}

// TestPublishExpvarIdempotent is the regression test for the duplicate-name
// panic: re-publishing the same engine under the same name is a no-op, a
// second engine claiming the name gets a typed error, and neither path may
// reach expvar.Publish's duplicate panic.
func TestPublishExpvarIdempotent(t *testing.T) {
	prog, err := Compile(engineSrc)
	if err != nil {
		t.Fatal(err)
	}
	name := "symbol_test_expvar_" + t.Name()
	a, b := NewEngine(prog), NewEngine(prog)

	if err := a.PublishExpvar(name); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	if err := a.PublishExpvar(name); err != nil {
		t.Fatalf("re-publish by owner: %v", err)
	}
	err = b.PublishExpvar(name)
	var taken *ErrExpvarTaken
	if !errors.As(err, &taken) {
		t.Fatalf("conflicting publish: err=%v, want *ErrExpvarTaken", err)
	}
	if taken.Name != name {
		t.Errorf("conflict names %q", taken.Name)
	}
	// The conflict must not have displaced the owner: publishing again
	// still succeeds for a, still fails for b.
	if err := a.PublishExpvar(name); err != nil {
		t.Errorf("owner after conflict: %v", err)
	}
	if err := b.PublishExpvar(name); err == nil {
		t.Error("loser retried and won the taken name")
	}
}

// TestPublishExpvarConcurrent hammers one name from many goroutines across
// two engines: exactly one engine may own it, nobody may panic.
func TestPublishExpvarConcurrent(t *testing.T) {
	prog, err := Compile(engineSrc)
	if err != nil {
		t.Fatal(err)
	}
	name := "symbol_test_expvar_" + t.Name()
	engines := []*Engine{NewEngine(prog), NewEngine(prog)}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = engines[i%2].PublishExpvar(name)
		}(i)
	}
	wg.Wait()
	var ok int
	for _, err := range errs {
		if err == nil {
			ok++
		}
	}
	// All eight calls from the winning engine return nil; all eight from
	// the loser return the typed conflict.
	if ok != 8 {
		t.Errorf("%d publishes succeeded, want exactly the one owner's 8", ok)
	}
}
