package symbol_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"symbol"
	"symbol/internal/benchprog"
)

// loadCorpus returns the benchmark programs used by the snapshot tests
// (the Heavy ones are skipped under -short).
func snapshotCorpus(t *testing.T) []*benchprog.Benchmark {
	t.Helper()
	var out []*benchprog.Benchmark
	for _, b := range benchprog.All() {
		if testing.Short() && b.Heavy {
			continue
		}
		out = append(out, b)
	}
	return out
}

// TestSnapshotRoundTripCorpus compiles every benchmark, snapshots it,
// loads the snapshot back, and checks the loaded program is observably
// identical: same ICI listing, code size, undefined set, source, and the
// same run output.
func TestSnapshotRoundTripCorpus(t *testing.T) {
	ctx := context.Background()
	for _, b := range snapshotCorpus(t) {
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			orig, err := symbol.Load(ctx, []byte(b.Source))
			if err != nil {
				t.Fatalf("Load source: %v", err)
			}
			data := orig.Snapshot()
			if !symbol.IsSnapshot(data) {
				t.Fatal("Snapshot() bytes not recognized by IsSnapshot")
			}
			loaded, err := symbol.Load(ctx, data)
			if err != nil {
				t.Fatalf("Load snapshot: %v", err)
			}
			if got, want := loaded.ICListing(), orig.ICListing(); got != want {
				t.Fatal("ICListing differs after round trip")
			}
			if loaded.CodeSize() != orig.CodeSize() {
				t.Fatalf("CodeSize = %d, want %d", loaded.CodeSize(), orig.CodeSize())
			}
			if !reflect.DeepEqual(loaded.Undefined(), orig.Undefined()) {
				t.Fatalf("Undefined = %v, want %v", loaded.Undefined(), orig.Undefined())
			}
			if loaded.Source() != b.Source {
				t.Fatal("embedded source differs")
			}
			if loaded.Goal() != "" {
				t.Fatalf("program snapshot has goal %q", loaded.Goal())
			}
			res, err := loaded.RunContext(ctx)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Output != b.Expect {
				t.Fatalf("output %q, want %q", res.Output, b.Expect)
			}
		})
	}
}

// TestSnapshotDifferential runs each corpus program twice — compiled from
// source and loaded from its snapshot — under every dispatch mode, and
// requires identical observable results: success, output, steps, and every
// Stats counter except wall time.
func TestSnapshotDifferential(t *testing.T) {
	ctx := context.Background()
	modes := []symbol.Dispatch{
		symbol.DispatchLegacy, symbol.DispatchNoFuse,
		symbol.DispatchFused, symbol.DispatchThreaded,
	}
	for _, b := range snapshotCorpus(t) {
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			orig, err := symbol.Load(ctx, []byte(b.Source))
			if err != nil {
				t.Fatalf("Load source: %v", err)
			}
			loaded, err := symbol.Load(ctx, orig.Snapshot())
			if err != nil {
				t.Fatalf("Load snapshot: %v", err)
			}
			for _, mode := range modes {
				want, err := orig.RunContext(ctx, symbol.WithDispatch(mode))
				if err != nil {
					t.Fatalf("%v compiled run: %v", mode, err)
				}
				got, err := loaded.RunContext(ctx, symbol.WithDispatch(mode))
				if err != nil {
					t.Fatalf("%v snapshot run: %v", mode, err)
				}
				if got.Succeeded != want.Succeeded || got.Output != want.Output || got.Steps != want.Steps {
					t.Fatalf("%v: result differs: got ok=%v steps=%d, want ok=%v steps=%d",
						mode, got.Succeeded, got.Steps, want.Succeeded, want.Steps)
				}
				gs, ws := got.Stats, want.Stats
				gs.Wall, ws.Wall = 0, 0
				if gs != ws {
					t.Fatalf("%v: stats differ:\ngot  %+v\nwant %+v", mode, gs, ws)
				}
			}
		})
	}
}

// TestSnapshotQueryRoundTrip checks the query (WithGoal) path: kind, goal
// and knowledge base survive the round trip and keep answering.
func TestSnapshotQueryRoundTrip(t *testing.T) {
	ctx := context.Background()
	const kb = "parent(tom, bob).\nparent(bob, ann).\ngrand(X, Z) :- parent(X, Y), parent(Y, Z).\n"
	orig, err := symbol.Load(ctx, []byte(kb), symbol.WithGoal("?- grand(tom, W)."))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	loaded, err := symbol.Load(ctx, orig.Snapshot())
	if err != nil {
		t.Fatalf("Load snapshot: %v", err)
	}
	if loaded.Goal() != "grand(tom, W)." {
		t.Fatalf("goal = %q", loaded.Goal())
	}
	if loaded.Source() != kb {
		t.Fatalf("source = %q", loaded.Source())
	}
	want, err := orig.RunContext(ctx)
	if err != nil {
		t.Fatalf("compiled run: %v", err)
	}
	got, err := loaded.RunContext(ctx)
	if err != nil {
		t.Fatalf("snapshot run: %v", err)
	}
	if got.Output != want.Output || got.Output != "W = ann\n" {
		t.Fatalf("output %q / %q, want %q", got.Output, want.Output, "W = ann\n")
	}
	// A goal cannot be combined with a snapshot input.
	if _, err := symbol.Load(ctx, orig.Snapshot(), symbol.WithGoal("parent(X, Y)")); err == nil {
		t.Fatal("Load(snapshot, WithGoal) did not fail")
	}
}

// TestSnapshotFaultParity: faults must surface identically from compiled
// and snapshot-loaded programs — same typed error, same text.
func TestSnapshotFaultParity(t *testing.T) {
	ctx := context.Background()
	const src = "main :- X is 1 // 0, write(X)."
	orig, err := symbol.Load(ctx, []byte(src))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	loaded, err := symbol.Load(ctx, orig.Snapshot())
	if err != nil {
		t.Fatalf("Load snapshot: %v", err)
	}
	for _, mode := range []symbol.Dispatch{
		symbol.DispatchLegacy, symbol.DispatchNoFuse,
		symbol.DispatchFused, symbol.DispatchThreaded,
	} {
		_, werr := orig.RunContext(ctx, symbol.WithDispatch(mode))
		_, gerr := loaded.RunContext(ctx, symbol.WithDispatch(mode))
		if werr == nil || gerr == nil {
			t.Fatalf("%v: expected zero-divide fault, got %v / %v", mode, werr, gerr)
		}
		if !errors.Is(gerr, symbol.ErrZeroDivide) || gerr.Error() != werr.Error() {
			t.Fatalf("%v: fault differs: %q vs %q", mode, gerr, werr)
		}
	}
}

// TestSnapshotEmbeddedProfile: a snapshot written after Profile() carries
// the profile, and the loaded program schedules without rerunning it.
func TestSnapshotEmbeddedProfile(t *testing.T) {
	ctx := context.Background()
	b, err := benchprog.Get("qsort")
	if err != nil {
		t.Fatal(err)
	}
	orig, err := symbol.Load(ctx, []byte(b.Source))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	bare := orig.Snapshot() // pre-profile: no profile section
	wantProf, err := orig.Profile()
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	full := orig.Snapshot() // post-profile: profile embedded
	if len(full) <= len(bare) {
		t.Fatalf("profiled snapshot (%d bytes) not larger than bare (%d)", len(full), len(bare))
	}
	info, err := symbol.SnapshotInfo(full)
	if err != nil {
		t.Fatalf("SnapshotInfo: %v", err)
	}
	var names []string
	for _, s := range info.Sections {
		names = append(names, s.Name)
	}
	if !reflect.DeepEqual(names, []string{"meta", "source", "program", "exec", "profile"}) {
		t.Fatalf("sections = %v", names)
	}
	loaded, err := symbol.Load(ctx, full)
	if err != nil {
		t.Fatalf("Load snapshot: %v", err)
	}
	gotProf, err := loaded.Profile()
	if err != nil {
		t.Fatalf("loaded Profile: %v", err)
	}
	if !reflect.DeepEqual(gotProf.Expect, wantProf.Expect) || !reflect.DeepEqual(gotProf.Taken, wantProf.Taken) {
		t.Fatal("embedded profile differs from computed profile")
	}
	// The profile must be good enough to schedule and simulate with.
	sched, err := loaded.ScheduleWith(symbol.DefaultMachine(3))
	if err != nil {
		t.Fatalf("ScheduleWith: %v", err)
	}
	res, err := sched.Simulate()
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Output != b.Expect {
		t.Fatalf("simulated output %q, want %q", res.Output, b.Expect)
	}
}

// TestSnapshotCorruptionTyped flips bytes across a real corpus snapshot
// and checks Load's error contract: typed snapshot errors, never a panic,
// never a silently-wrong program.
func TestSnapshotCorruptionTyped(t *testing.T) {
	ctx := context.Background()
	b, err := benchprog.Get("reverse")
	if err != nil {
		t.Fatal(err)
	}
	orig, err := symbol.Load(ctx, []byte(b.Source))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	data := orig.Snapshot()
	stride := 7 // sample positions; the exhaustive sweep lives in internal/snapshot
	for i := 0; i < len(data); i += stride {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x55
		_, err := symbol.Load(ctx, mut, symbol.WithoutRecompileFallback())
		if i < 8 {
			// Magic flips stop looking like a snapshot, so Load treats the
			// bytes as Prolog source — binary garbage must still error.
			if err == nil {
				t.Fatalf("byte %d: corrupt magic loaded successfully", i)
			}
			continue
		}
		var fe *symbol.SnapshotFormatError
		var ce *symbol.SnapshotChecksumError
		var ve *symbol.SnapshotVersionError
		if !errors.As(err, &fe) && !errors.As(err, &ce) && !errors.As(err, &ve) {
			t.Fatalf("byte %d: error %T %v is not a typed snapshot error", i, err, err)
		}
	}
}

// TestSnapshotVersionFallback: a version-skewed snapshot recompiles from
// its embedded source by default, and surfaces the typed error when the
// fallback is disabled.
func TestSnapshotVersionFallback(t *testing.T) {
	ctx := context.Background()
	b, err := benchprog.Get("reverse")
	if err != nil {
		t.Fatal(err)
	}
	orig, err := symbol.Load(ctx, []byte(b.Source))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	data := orig.Snapshot()
	data[8]++ // format version field (little-endian u32 at offset 8)

	var ve *symbol.SnapshotVersionError
	if _, err := symbol.Load(ctx, data, symbol.WithoutRecompileFallback()); !errors.As(err, &ve) {
		t.Fatalf("WithoutRecompileFallback: got %v, want SnapshotVersionError", err)
	}
	if ve.Source != b.Source {
		t.Fatal("version error did not recover the embedded source")
	}

	prog, err := symbol.Load(ctx, data)
	if err != nil {
		t.Fatalf("fallback load: %v", err)
	}
	res, err := prog.RunContext(ctx)
	if err != nil {
		t.Fatalf("fallback run: %v", err)
	}
	if res.Output != b.Expect {
		t.Fatalf("fallback output %q, want %q", res.Output, b.Expect)
	}
}

// TestSnapshotCache: the content-addressed cache produces a .sym file on
// miss, serves hits, survives corruption, and misses when inputs change.
func TestSnapshotCache(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	b, err := benchprog.Get("qsort")
	if err != nil {
		t.Fatal(err)
	}
	load := func() *symbol.Program {
		t.Helper()
		p, err := symbol.Load(ctx, []byte(b.Source), symbol.WithSnapshotCache(dir))
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		return p
	}
	load()
	files, err := filepath.Glob(filepath.Join(dir, "*.sym"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache files = %v, %v; want exactly one", files, err)
	}
	first, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}

	// Hit: same inputs, file untouched, program still correct.
	p2 := load()
	res, err := p2.RunContext(ctx)
	if err != nil || res.Output != b.Expect {
		t.Fatalf("cached run = %q, %v; want %q", res.Output, err, b.Expect)
	}
	second, err := os.ReadFile(files[0])
	if err != nil || !bytes.Equal(first, second) {
		t.Fatal("cache hit rewrote the cache file")
	}

	// Corrupt cache entry: load falls back to compiling and repairs it.
	if err := os.WriteFile(files[0], first[:len(first)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	p3 := load()
	if res, err := p3.RunContext(ctx); err != nil || res.Output != b.Expect {
		t.Fatalf("run after corrupt cache = %v, %v", res, err)
	}
	repaired, err := os.ReadFile(files[0])
	if err != nil || !bytes.Equal(repaired, first) {
		t.Fatal("corrupt cache entry was not rewritten")
	}

	// Different options key differently.
	if _, err := symbol.Load(ctx, []byte(b.Source), symbol.WithSnapshotCache(dir),
		symbol.WithCompileOptions(symbol.Options{ArithChecks: false})); err != nil {
		t.Fatalf("Load with options: %v", err)
	}
	files, _ = filepath.Glob(filepath.Join(dir, "*.sym"))
	if len(files) != 2 {
		t.Fatalf("after options change: %d cache files, want 2", len(files))
	}
}

// BenchmarkSnapshotLoad and BenchmarkSourceCompile are the two sides of
// the cold-start comparison -snapbench reports, exposed as Go benchmarks
// so the load path can be profiled in isolation.
func BenchmarkSnapshotLoad(b *testing.B) {
	bench, err := benchprog.Get("qsort")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := symbol.Load(context.Background(), []byte(bench.Source))
	if err != nil {
		b.Fatal(err)
	}
	snap := prog.Snapshot()
	b.SetBytes(int64(len(snap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := symbol.Load(context.Background(), snap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSourceCompile(b *testing.B) {
	bench, err := benchprog.Get("qsort")
	if err != nil {
		b.Fatal(err)
	}
	src := []byte(bench.Source)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := symbol.Load(context.Background(), src); err != nil {
			b.Fatal(err)
		}
	}
}
