// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its experiment from live
// runs (compile → profile → compact → simulate) and reports the headline
// quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. cmd/symbolbench prints the same data as
// formatted tables.
package symbol_test

import (
	"context"
	"sync"
	"testing"

	"symbol"
	"symbol/internal/benchprog"
	"symbol/internal/experiments"
)

// The runner caches compiled/profiled benchmarks so a -benchtime above 1x
// re-measures scheduling and simulation, not parsing and profiling.
var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

func getRunner() *experiments.Runner {
	runnerOnce.Do(func() { runner = experiments.NewRunner() })
	return runner
}

func BenchmarkFigure2InstructionMix(b *testing.B) {
	r := getRunner()
	var mem, ctrl float64
	for i := 0; i < b.N; i++ {
		f2, err := r.Figure2Mix(experiments.Table2Names())
		if err != nil {
			b.Fatal(err)
		}
		mem, ctrl = f2.MemoryFraction(), f2.ControlFraction()
	}
	b.ReportMetric(mem*100, "memory_%")
	b.ReportMetric(ctrl*100, "control_%")
}

func BenchmarkFigure3AmdahlCurves(b *testing.B) {
	r := getRunner()
	var limit float64
	for i := 0; i < b.N; i++ {
		f3, err := r.Figure3Amdahl(experiments.Table2Names())
		if err != nil {
			b.Fatal(err)
		}
		limit = f3.Limit
	}
	b.ReportMetric(limit, "amdahl_limit")
}

func BenchmarkTable1Compaction(b *testing.B) {
	r := getRunner()
	var t1 *experiments.Table1
	for i := 0; i < b.N; i++ {
		var err error
		t1, err = r.Table1Compaction(experiments.SuiteNames())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(t1.Avg.TraceSpeedup, "trace_speedup")
	b.ReportMetric(t1.Avg.TraceLen, "trace_len")
	b.ReportMetric(t1.Avg.BBSpeedup, "bb_speedup")
	b.ReportMetric(t1.Avg.BBLen, "bb_len")
}

func BenchmarkTable2BranchPrediction(b *testing.B) {
	r := getRunner()
	var t2 *experiments.Table2
	for i := 0; i < b.N; i++ {
		var err error
		t2, err = r.Table2Branches(experiments.Table2Names())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(t2.AvgPfp, "avg_pfp")
}

// BenchmarkFigure4Distribution is the histogram companion of Table 2.
func BenchmarkFigure4Distribution(b *testing.B) {
	r := getRunner()
	var nearZero, dataPeak float64
	for i := 0; i < b.N; i++ {
		t2, err := r.Table2Branches(experiments.Table2Names())
		if err != nil {
			b.Fatal(err)
		}
		nearZero = t2.Histogram[0]
		dataPeak = 0
		for _, v := range t2.Histogram[14:] { // P_fp ≥ 0.35
			dataPeak += v
		}
	}
	b.ReportMetric(nearZero*100, "deterministic_%")
	b.ReportMetric(dataPeak*100, "datadependent_%")
}

func BenchmarkTable3UnitSweep(b *testing.B) {
	r := getRunner()
	var t3 *experiments.Table3
	for i := 0; i < b.N; i++ {
		var err error
		t3, err = r.Table3Sweep(experiments.SuiteNames(), []int{1, 2, 3, 4, 5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(t3.AvgBAM, "su_bam")
	for i, u := range t3.Units {
		b.ReportMetric(t3.AvgSU[i], map[int]string{1: "su_1u", 2: "su_2u", 3: "su_3u", 4: "su_4u", 5: "su_5u"}[u])
	}
}

// BenchmarkFigure6Saturation quantifies the saturation the figure plots:
// the marginal gain of the 5th unit over the 3rd.
func BenchmarkFigure6Saturation(b *testing.B) {
	r := getRunner()
	var marginal float64
	for i := 0; i < b.N; i++ {
		t3, err := r.Table3Sweep(experiments.SuiteNames(), []int{3, 5})
		if err != nil {
			b.Fatal(err)
		}
		marginal = t3.AvgSU[1] - t3.AvgSU[0]
	}
	b.ReportMetric(marginal, "su_gain_3to5")
}

func BenchmarkTable4AbsoluteTimes(b *testing.B) {
	r := getRunner()
	var t4 *experiments.Table4
	for i := 0; i < b.N; i++ {
		var err error
		t4, err = r.Table4Absolute(experiments.SuiteNames())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(t4.NreverseMLIPS, "nrev_mlips")
	for _, row := range t4.Rows {
		if row.Name == "qsort" {
			b.ReportMetric(row.MeasuredMs, "qsort_ms")
		}
	}
}

func BenchmarkTable5RelativeSpeedup(b *testing.B) {
	r := getRunner()
	var t5 *experiments.Table5
	for i := 0; i < b.N; i++ {
		var err error
		t5, err = r.Table5Relative(experiments.SuiteNames())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(t5.AvgSym3, "su_symbol3")
	b.ReportMetric(t5.AvgBAM, "su_bamlike")
}

// --- micro-benchmarks of the pipeline stages --------------------------------

func BenchmarkCompileQsort(b *testing.B) {
	src := mustSource(b, "qsort")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := symbol.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmulateQsort(b *testing.B) {
	prog, err := symbol.Compile(mustSource(b, "qsort"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		res, err := prog.Run()
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Steps
	}
	b.ReportMetric(float64(steps), "icis")
}

func BenchmarkScheduleQsort(b *testing.B) {
	prog, err := symbol.Compile(mustSource(b, "qsort"))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := prog.Profile(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Schedule(symbol.DefaultMachine(3), symbol.ScheduleOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateQsort(b *testing.B) {
	prog, err := symbol.Compile(mustSource(b, "qsort"))
	if err != nil {
		b.Fatal(err)
	}
	sched, err := prog.Schedule(symbol.DefaultMachine(3), symbol.ScheduleOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		sim, err := sched.Simulate()
		if err != nil {
			b.Fatal(err)
		}
		cycles = sim.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// streamEngine compiles goal against a named benchmark's knowledge base
// into a pooled engine for the streaming benchmarks.
func streamEngine(b *testing.B, bench, goal string) *symbol.Engine {
	b.Helper()
	prog, err := symbol.CompileQuery(mustSource(b, bench), goal)
	if err != nil {
		b.Fatal(err)
	}
	return symbol.NewEngine(prog)
}

// BenchmarkStreamQueensAll streams every solution of 8-queens through the
// suspendable engine — 92 suspend/resume cycles per iteration, the
// all-answers counterpart of the one-shot emulation benchmarks.
func BenchmarkStreamQueensAll(b *testing.B) {
	eng := streamEngine(b, "queens_8", "queens(8, Qs)")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		sols, err := eng.QueryContext(ctx)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for sols.Next() {
			steps = sols.Result().Steps
			n++
		}
		if err := sols.Close(); err != nil {
			b.Fatal(err)
		}
		if n != 92 {
			b.Fatalf("%d solutions, want 92", n)
		}
	}
	b.ReportMetric(92, "solutions")
	b.ReportMetric(float64(steps), "icis")
}

// BenchmarkStreamQueensFirst takes one solution and abandons the stream:
// the cost of a page-1-only paginated query, dominated by the O(dirty
// pages) state reset rather than the full 92-solution search.
func BenchmarkStreamQueensFirst(b *testing.B) {
	eng := streamEngine(b, "queens_8", "queens(8, Qs)")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sols, err := eng.QueryContext(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if !sols.Next() {
			b.Fatalf("no solution: %v", sols.Err())
		}
		if err := sols.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamBoyerRuleJoin streams the full self-join of the boyer
// rule base (16x16 = 256 answers), each solution rendering four sizable
// rewrite-rule terms — a write-heavy all-answers workload.
func BenchmarkStreamBoyerRuleJoin(b *testing.B) {
	eng := streamEngine(b, "boyer", "rule(L1, R1), rule(L2, R2)")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sols, err := eng.QueryContext(ctx)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for sols.Next() {
			n++
		}
		if err := sols.Close(); err != nil {
			b.Fatal(err)
		}
		if n != 256 {
			b.Fatalf("%d join answers, want 256", n)
		}
	}
	b.ReportMetric(256, "solutions")
}

func mustSource(b *testing.B, name string) string {
	b.Helper()
	bm, err := benchprog.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	return bm.Source
}

// --- ablation benches on the design choices DESIGN.md calls out -------------

// BenchmarkAblationRegionDisambiguation measures how much an oracle memory
// disambiguator (exact region knowledge) buys over the paper's conservative
// assumption — the paper argues pointer-derived stack references make
// disambiguation hopeless; this quantifies the forgone gain.
func BenchmarkAblationRegionDisambiguation(b *testing.B) {
	prog, err := symbol.Compile(mustSource(b, "qsort"))
	if err != nil {
		b.Fatal(err)
	}
	var base, oracle int64
	for i := 0; i < b.N; i++ {
		for j, conf := range []symbol.MachineConfig{symbol.DefaultMachine(3), func() symbol.MachineConfig {
			c := symbol.DefaultMachine(3)
			c.DisambiguateRegions = true
			return c
		}()} {
			sched, err := prog.Schedule(conf, symbol.ScheduleOptions{})
			if err != nil {
				b.Fatal(err)
			}
			sim, err := sched.Simulate()
			if err != nil {
				b.Fatal(err)
			}
			if j == 0 {
				base = sim.Cycles
			} else {
				oracle = sim.Cycles
			}
		}
	}
	b.ReportMetric(float64(base), "cycles_conservative")
	b.ReportMetric(float64(oracle), "cycles_oracle")
	b.ReportMetric(100*(1-float64(oracle)/float64(base)), "oracle_gain_%")
}

// BenchmarkAblationTailDuplication quantifies the trace-length / code-size
// trade-off of growing traces through joins.
func BenchmarkAblationTailDuplication(b *testing.B) {
	prog, err := symbol.Compile(mustSource(b, "serialise"))
	if err != nil {
		b.Fatal(err)
	}
	var withLen, withoutLen float64
	var withCycles, withoutCycles int64
	var withOps, withoutOps int
	for i := 0; i < b.N; i++ {
		for j, opts := range []symbol.ScheduleOptions{{}, {NoTailDuplication: true}} {
			sched, err := prog.Schedule(symbol.DefaultMachine(3), opts)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := sched.Simulate()
			if err != nil {
				b.Fatal(err)
			}
			if j == 0 {
				withLen, withCycles, withOps = sched.AvgTraceLen(), sim.Cycles, sched.Ops()
			} else {
				withoutLen, withoutCycles, withoutOps = sched.AvgTraceLen(), sim.Cycles, sched.Ops()
			}
		}
	}
	b.ReportMetric(withLen, "trace_len_dup")
	b.ReportMetric(withoutLen, "trace_len_nodup")
	b.ReportMetric(float64(withCycles), "cycles_dup")
	b.ReportMetric(float64(withoutCycles), "cycles_nodup")
	b.ReportMetric(100*float64(withOps-withoutOps)/float64(withoutOps), "code_growth_%")
}

// BenchmarkAblationModeAnalysis measures what perfect arithmetic mode
// analysis (no runtime tag checks, as the BAM compiler's dataflow analysis
// provides) saves in dynamic operations.
func BenchmarkAblationModeAnalysis(b *testing.B) {
	src := mustSource(b, "tak")
	var checked, unchecked int64
	for i := 0; i < b.N; i++ {
		p1, err := symbol.CompileWith(src, symbol.Options{ArithChecks: true})
		if err != nil {
			b.Fatal(err)
		}
		p2, err := symbol.CompileWith(src, symbol.Options{ArithChecks: false})
		if err != nil {
			b.Fatal(err)
		}
		r1, err := p1.Run()
		if err != nil {
			b.Fatal(err)
		}
		r2, err := p2.Run()
		if err != nil {
			b.Fatal(err)
		}
		checked, unchecked = r1.Steps, r2.Steps
	}
	b.ReportMetric(float64(checked), "icis_checked")
	b.ReportMetric(float64(unchecked), "icis_mode_analysis")
}

// BenchmarkAblationSplitFormats quantifies the prototype's two-instruction-
// format pinout constraint (§5.1: "the compiler has to choose, and
// parallelism is somewhat reduced").
func BenchmarkAblationSplitFormats(b *testing.B) {
	prog, err := symbol.Compile(mustSource(b, "serialise"))
	if err != nil {
		b.Fatal(err)
	}
	var unified, split int64
	for i := 0; i < b.N; i++ {
		for j, mk := range []func() symbol.MachineConfig{
			func() symbol.MachineConfig { return symbol.DefaultMachine(3) },
			func() symbol.MachineConfig {
				c := symbol.DefaultMachine(3)
				c.SplitFormats = true
				return c
			},
		} {
			sched, err := prog.Schedule(mk(), symbol.ScheduleOptions{})
			if err != nil {
				b.Fatal(err)
			}
			sim, err := sched.Simulate()
			if err != nil {
				b.Fatal(err)
			}
			if j == 0 {
				unified = sim.Cycles
			} else {
				split = sim.Cycles
			}
		}
	}
	b.ReportMetric(float64(unified), "cycles_unified")
	b.ReportMetric(float64(split), "cycles_split")
	b.ReportMetric(100*(float64(split)/float64(unified)-1), "format_cost_%")
}
