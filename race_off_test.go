//go:build !race

package symbol

const raceEnabled = false
