package symbol

import (
	"strings"
	"testing"
)

// TestCompileQueryTerminators is the regression table for the trailing-"."
// normalization bug: CompileQuery used to bolt a "." onto any goal whose
// last byte wasn't one, which double-terminated goals ending in a quoted
// atom and mis-terminated goals ending in a % comment. Termination now goes
// through the parser: parse as written, retry with a terminator on its own
// line, and only then reject.
func TestCompileQueryTerminators(t *testing.T) {
	kb := `
p(1). p(2).
q('a.b').
`
	cases := []struct {
		name string
		goal string
		want string // substring of the first solution's output; "" = expect compile error
	}{
		{"bare", "p(X)", "X = 1"},
		{"terminated", "p(X).", "X = 1"},
		{"prefixed", "?- p(X).", "X = 1"},
		{"prefixed-bare", "?-p(X)", "X = 1"},
		{"spaced", "  p(X) . ", "X = 1"},
		{"quoted-dot-atom", "q(X)", "X = a.b"},
		{"quoted-dot-atom-terminated", "q(X).", "X = a.b"},
		{"ends-in-quoted-dot", "X = 'a.b'", "X = a.b"},
		{"trailing-comment", "p(X) % pick one", "X = 1"},
		{"terminated-then-comment", "p(X). % done", "X = 1"},
		{"no-variables", "p(1)", "yes"},
		{"empty", "", ""},
		{"only-prefix", "?-", ""},
		{"two-clauses", "p(X). p(Y).", ""},
		{"malformed", "p(", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := CompileQuery(kb, c.goal)
			if c.want == "" {
				if err == nil {
					t.Fatalf("goal %q compiled, want error", c.goal)
				}
				return
			}
			if err != nil {
				t.Fatalf("goal %q: %v", c.goal, err)
			}
			res, err := prog.Run()
			if err != nil {
				t.Fatalf("goal %q run: %v", c.goal, err)
			}
			if !res.Succeeded || !strings.Contains(res.Output, c.want) {
				t.Fatalf("goal %q: ok=%v output %q, want substring %q",
					c.goal, res.Succeeded, res.Output, c.want)
			}
		})
	}
}

// TestCompileQueryDropsMain: the knowledge base's own main/0 must not
// shadow the posed goal.
func TestCompileQueryDropsMain(t *testing.T) {
	kb := `
main :- write(wrong), nl.
p(ok).
`
	prog, err := CompileQuery(kb, "p(X)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Output, "wrong") || !strings.Contains(res.Output, "X = ok") {
		t.Fatalf("kb main leaked into query: %q", res.Output)
	}
}
