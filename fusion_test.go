package symbol

import (
	"errors"
	"testing"
	"time"

	"symbol/internal/benchprog"
	"symbol/internal/emu"
	"symbol/internal/exec"
	"symbol/internal/fault"
	"symbol/internal/ic"
)

// The predecoded interpreter loops (internal/emu/run.go) and the
// superinstruction fusion pass (internal/exec) must be observationally
// indistinguishable from the legacy reference interpreter: same Status,
// Output and Steps (in original-ICI units), same Expect/Taken profile, and
// the same typed fault at the same pc under every injected resource
// configuration. These tests run all four execution modes — legacy, plain
// predecoded (NoFuse), fused, and closure-threaded — over the full
// benchmark suite and a fault matrix, comparing results exactly.

// emuModes are the four sequential execution modes under test.
var emuModes = []struct {
	name string
	set  func(*emu.Options)
}{
	{"legacy", func(o *emu.Options) { o.Legacy = true }},
	{"nofuse", func(o *emu.Options) { o.NoFuse = true }},
	{"fused", func(o *emu.Options) {}},
	{"threaded", func(o *emu.Options) { o.Threaded = true }},
}

// runMode executes prog's IC under one mode with the given base options.
func runMode(t *testing.T, prog *Program, base emu.Options, mode func(*emu.Options)) (*emu.Result, error) {
	t.Helper()
	opts := base
	mode(&opts)
	return emu.Run(prog.icp, opts)
}

// TestFusionDifferentialBenchmarks runs every benchmark in all three modes
// and requires identical observable results, then repeats the run with
// profiling and requires bit-identical Expect/Taken arrays: fusion must not
// shift a single count out of original-ICI units.
func TestFusionDifferentialBenchmarks(t *testing.T) {
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if b.Heavy && testing.Short() {
				t.Skip("heavy benchmark (short mode)")
			}
			t.Parallel()
			prog, err := Compile(b.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			ref, err := runMode(t, prog, emu.Options{}, emuModes[0].set)
			if err != nil {
				t.Fatalf("legacy run: %v", err)
			}
			if ref.Output != b.Expect {
				t.Fatalf("legacy output %q, benchmark expects %q", ref.Output, b.Expect)
			}
			for _, m := range emuModes[1:] {
				res, err := runMode(t, prog, emu.Options{}, m.set)
				if err != nil {
					t.Fatalf("%s run: %v", m.name, err)
				}
				if res.Status != ref.Status || res.Output != ref.Output || res.Steps != ref.Steps {
					t.Fatalf("%s diverged: status %d/%d steps %d/%d output %q/%q",
						m.name, res.Status, ref.Status, res.Steps, ref.Steps, res.Output, ref.Output)
				}
			}

			// Profiled runs: Expect/Taken must match exactly, per pc.
			pref, err := runMode(t, prog, emu.Options{Profile: true}, emuModes[0].set)
			if err != nil {
				t.Fatalf("legacy profiled run: %v", err)
			}
			for _, m := range emuModes[1:] {
				res, err := runMode(t, prog, emu.Options{Profile: true}, m.set)
				if err != nil {
					t.Fatalf("%s profiled run: %v", m.name, err)
				}
				if res.Steps != pref.Steps {
					t.Fatalf("%s profiled steps %d, legacy %d", m.name, res.Steps, pref.Steps)
				}
				for pc := range pref.Profile.Expect {
					if res.Profile.Expect[pc] != pref.Profile.Expect[pc] {
						t.Fatalf("%s: Expect[%d] = %d, legacy %d (inst %s)",
							m.name, pc, res.Profile.Expect[pc], pref.Profile.Expect[pc],
							prog.icp.Code[pc].String())
					}
					if res.Profile.Taken[pc] != pref.Profile.Taken[pc] {
						t.Fatalf("%s: Taken[%d] = %d, legacy %d (inst %s)",
							m.name, pc, res.Profile.Taken[pc], pref.Profile.Taken[pc],
							prog.icp.Code[pc].String())
					}
				}
			}
		})
	}
}

// TestFusionStatic sanity-checks the fusion pass over the compiled
// benchmarks: superinstructions must actually form on BAM-shaped code, and
// the stream must shrink accordingly (FusedOps + fused pair count ==
// PlainOps, since every pair replaces exactly two plain ops).
func TestFusionStatic(t *testing.T) {
	b, err := benchprog.Get("queens_8")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(b.Source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	xp := exec.Of(prog.icp)
	pairs := 0
	for _, n := range xp.Stats.Pairs {
		pairs += n
	}
	if pairs == 0 {
		t.Fatal("fusion pass formed no superinstructions on queens_8")
	}
	if xp.Stats.FusedOps+pairs != xp.Stats.PlainOps {
		t.Fatalf("stream accounting: %d fused ops + %d pairs != %d plain ops",
			xp.Stats.FusedOps, pairs, xp.Stats.PlainOps)
	}
	// Every fused op must carry Width 2 and sit on a non-jump-target pc+1.
	for i := range xp.Fused.Ops {
		op := &xp.Fused.Ops[i]
		if op.Code.Fused() && op.Width != 2 {
			t.Fatalf("fused op %s at pc %d has width %d", op.Code, op.PC, op.Width)
		}
	}
}

// fusionFaultPrograms exercise distinct fault paths: heap pressure from
// list building, env pressure from deep recursion, and a catch/3 barrier
// that converts a resource fault into a recovery (so the redirect path
// through $throwunwind runs under fusion too).
var fusionFaultPrograms = map[string]string{
	"heap": `
build(0, []).
build(N, [N|T]) :- N > 0, M is N - 1, build(M, T).
main :- build(5000, L), L = [_|_].
`,
	"env": `
sum(0, 0).
sum(N, S) :- N > 0, M is N - 1, sum(M, T), S is T + 1.
main :- sum(5000, S), S > 0.
`,
	"caught": `
build(0, []).
build(N, [N|T]) :- N > 0, M is N - 1, build(M, T).
main :- catch(build(100000, _), resource_error(E), (write(caught), write(E), nl)).
`,
}

// fusionInjections is the resource-injection matrix. Every entry must
// produce the identical outcome — same typed fault kind, same pc, same
// rendered error — in all three modes.
var fusionInjections = []struct {
	name string
	opts emu.Options
}{
	{"full", emu.Options{}},
	{"tiny-heap", emu.Options{Layout: ic.Layout{HeapWords: 2048}}},
	{"tiny-env", emu.Options{Layout: ic.Layout{EnvWords: 512}}},
	{"tiny-cp", emu.Options{Layout: ic.Layout{CPWords: 64}}},
	{"tiny-trail", emu.Options{Layout: ic.Layout{TrailWords: 128}}},
	{"steps-1", emu.Options{MaxSteps: 1}},
	{"steps-100", emu.Options{MaxSteps: 100}},
	{"steps-101", emu.Options{MaxSteps: 101}},
	{"steps-4096", emu.Options{MaxSteps: 4096}},
	{"expired-deadline", emu.Options{Deadline: time.Unix(1, 0)}},
}

// TestFusionFaultMatrix runs the program × injection matrix in all three
// modes and requires the identical outcome: same success/output on clean
// runs, and on faulting runs the same fault kind at the same pc (compared
// via the full rendered error, which embeds pc, instruction and reason).
func TestFusionFaultMatrix(t *testing.T) {
	for name, src := range fusionFaultPrograms {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog, err := Compile(src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, inj := range fusionInjections {
				ref, refErr := runMode(t, prog, inj.opts, emuModes[0].set)
				for _, m := range emuModes[1:] {
					res, err := runMode(t, prog, inj.opts, m.set)
					switch {
					case refErr == nil && err == nil:
						if res.Status != ref.Status || res.Output != ref.Output || res.Steps != ref.Steps {
							t.Fatalf("%s/%s diverged: status %d/%d steps %d/%d",
								inj.name, m.name, res.Status, ref.Status, res.Steps, ref.Steps)
						}
					case refErr != nil && err != nil:
						if err.Error() != refErr.Error() {
							t.Fatalf("%s/%s error diverged:\nlegacy: %v\n%s: %v",
								inj.name, m.name, refErr, m.name, err)
						}
					default:
						t.Fatalf("%s/%s: legacy err=%v, %s err=%v",
							inj.name, m.name, refErr, m.name, err)
					}
				}
			}
		})
	}
}

// TestFusionCancellation pins the hoisted poll's two guarantees. First, a
// run that is cancelled (or past its deadline) before it starts must abort
// at step 0 in every mode — the predecoded loops poll once on entry
// precisely so batch drivers can rely on pre-cancelled queries never
// touching machine state. Second, cancelling a run mid-flight must abort it
// promptly: the back-edge countdown polls at least once every
// fault.CheckInterval backward transfers, so an interrupt is honoured after
// a bounded amount of further work rather than at the next convenient
// Halt.
func TestFusionCancellation(t *testing.T) {
	b, err := benchprog.Get("queens_8")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(b.Source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	closed := make(chan struct{})
	close(closed)
	for _, m := range emuModes {
		_, err := runMode(t, prog, emu.Options{Interrupt: closed}, m.set)
		if !errors.Is(err, fault.ErrCanceled) {
			t.Fatalf("%s: pre-cancelled run: got %v, want ErrCanceled", m.name, err)
		}
		var e *emu.Error
		if !errors.As(err, &e) || e.PC != prog.icp.Entry {
			t.Fatalf("%s: pre-cancelled run aborted at pc %v, want entry %d", m.name, err, prog.icp.Entry)
		}
	}

	// Mid-flight cancellation: the run must return ErrCanceled well before
	// it could have finished the query. The wall-clock bound is generous —
	// the poll cadence (every CheckInterval back-edges) answers in
	// microseconds — so this cannot flake on a loaded machine.
	for _, m := range emuModes {
		ch := make(chan struct{})
		done := make(chan error, 1)
		go func(set func(*emu.Options)) {
			_, err := runMode(t, prog, emu.Options{Interrupt: ch}, set)
			done <- err
		}(m.set)
		time.Sleep(5 * time.Millisecond)
		close(ch)
		select {
		case err := <-done:
			// The query may legitimately finish before the cancel lands;
			// anything else must be a prompt ErrCanceled.
			if err != nil && !errors.Is(err, fault.ErrCanceled) {
				t.Fatalf("%s: mid-flight cancel: got %v", m.name, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: run ignored cancellation", m.name)
		}
	}
}
