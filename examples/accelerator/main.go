// Hardware-accelerator scenario (paper §5): the SYMBOL prototype was built
// as a Prolog accelerator attached to a host workstation and "applied to
// control tasks in autonomous vehicle navigation problems". This example
// runs a small rule-based route planner on the Symbol-3 prototype model —
// three processors, three-cycle pipelined memory, two-cycle delayed
// branches, 30 MHz — and reports absolute execution time the way the
// paper's Table 4 does.
package main

import (
	"fmt"
	"log"

	"symbol"
)

// A waypoint graph with costs; the planner searches a best route by
// depth-first search with a cost bound (iterative tightening).
const src = `
edge(base, crossing, 4).
edge(base, ridge, 6).
edge(crossing, tunnel, 5).
edge(crossing, marsh, 9).
edge(ridge, tunnel, 4).
edge(ridge, tower, 9).
edge(tunnel, tower, 3).
edge(marsh, depot, 4).
edge(tower, depot, 4).
edge(tunnel, depot, 9).

route(A, B, C, [A|P]) :- go(A, B, C, [A], P).
go(A, A, 0, _, []).
go(A, B, C, Seen, [N|P]) :-
    edge(A, N, EC),
    \+ member(N, Seen),
    C >= EC,
    C1 is C - EC,
    go(N, B, C1, [N|Seen], P).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

best(A, B, C) :- between1(1, 40, C), route(A, B, C, _), !.
between1(L, _, L).
between1(L, H, X) :- L < H, L1 is L+1, between1(L1, H, X).

main :- best(base, depot, C), write(cost(C)), nl,
        route(base, depot, C, P), !, write(P), nl.
`

func main() {
	prog, err := symbol.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planner answer:\n%s\n", res.Output)

	// The Symbol-3 prototype model: §5.1's implementation constraints.
	conf := symbol.DefaultMachine(3)
	conf.MemLatency = 3   // three-cycle pipelined memory
	conf.BranchBubble = 2 // two-cycle delayed branches
	const clockMHz = 30.0

	sched, err := prog.Schedule(conf, symbol.ScheduleOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := sched.Simulate()
	if err != nil {
		log.Fatal(err)
	}
	if sim.Output != res.Output {
		log.Fatal("accelerator run diverged from host emulation")
	}
	us := float64(sim.Cycles) / clockMHz
	fmt.Printf("Symbol-3 accelerator: %d cycles = %.1f µs at %.0f MHz\n",
		sim.Cycles, us, clockMHz)

	seq, err := prog.SeqCycles()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speed-up over the sequential model: %.2f\n",
		symbol.Speedup(seq, sim.Cycles))
}
