// Symbolic differentiation — the workload family of the paper's divide10 /
// log10 / ops8 / times10 benchmarks. This example runs the code analyses of
// paper §4 on it: the instruction mix, the Amdahl bound it implies, and the
// branch-predictability numbers that justify trace scheduling, then shows
// the measured effect of global compaction.
package main

import (
	"fmt"
	"log"

	"symbol"
)

const src = `
d(U+V, X, DU+DV) :- !, d(U, X, DU), d(V, X, DV).
d(U-V, X, DU-DV) :- !, d(U, X, DU), d(V, X, DV).
d(U*V, X, DU*V+U*DV) :- !, d(U, X, DU), d(V, X, DV).
d(U/V, X, (DU*V-U*DV)/(V^2)) :- !, d(U, X, DU), d(V, X, DV).
d(U^N, X, DU*N*U^N1) :- !, integer(N), N1 is N-1, d(U, X, DU).
d(-U, X, -DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U)*DU) :- !, d(U, X, DU).
d(log(U), X, DU/U) :- !, d(U, X, DU).
d(X, X, D) :- !, D = 1.
d(_, _, 0).

main :- d((x+1) * ((x^2+2) * (x^3+3)), x, D), write(D), nl.
`

func main() {
	prog, err := symbol.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derivative: %s\n", res.Output)

	a, err := prog.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("instruction mix (dynamic):")
	fmt.Printf("  alu %5.1f%%  memory %5.1f%%  move %5.1f%%  control %5.1f%%\n",
		100*a.Mix.ALU, 100*a.Mix.Memory, 100*a.Mix.Move, 100*a.Mix.Control)
	fmt.Printf("Amdahl shared-memory asymptote: %.2f\n", a.AmdahlLimit)
	fmt.Printf("branch predictability: avg P_fp = %.3f over %d dynamic branches\n",
		a.Branches.AvgFaultyPrediction, a.Branches.DynBranches)
	fmt.Printf("90/50 rule check: backward taken %.2f, forward taken %.2f\n",
		a.Branches.BackwardTaken, a.Branches.ForwardTaken)

	seq, _ := prog.SeqCycles()
	fmt.Printf("\n%-22s %10s %8s\n", "machine", "cycles", "speedup")
	fmt.Printf("%-22s %10d %8.2f\n", "sequential", seq, 1.0)
	for _, cfg := range []struct {
		label string
		bb    bool
		units int
	}{
		{"3-unit, basic blocks", true, 3},
		{"3-unit, traces", false, 3},
	} {
		sched, err := prog.Schedule(symbol.DefaultMachine(cfg.units),
			symbol.ScheduleOptions{BasicBlocksOnly: cfg.bb})
		if err != nil {
			log.Fatal(err)
		}
		sim, err := sched.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		if sim.Output != res.Output {
			log.Fatal("compacted run diverged")
		}
		fmt.Printf("%-22s %10d %8.2f   (avg unit %.1f ops)\n",
			cfg.label, sim.Cycles, symbol.Speedup(seq, sim.Cycles), sched.AvgTraceLen())
	}
}
