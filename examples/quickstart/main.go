// Quickstart: compile a Prolog program, run it sequentially, compact it
// with trace scheduling, and measure the VLIW cycle count.
package main

import (
	"fmt"
	"log"

	"symbol"
)

const src = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).

nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).

main :- nrev([1,2,3,4,5,6,7,8,9,10], R), write(R), nl.
`

func main() {
	// 1. Compile Prolog → BAM → Intermediate Code.
	prog, err := symbol.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled to %d intermediate-code instructions\n", prog.CodeSize())

	// 2. Run sequentially (this is also what produces the answer).
	res, err := prog.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential answer: %s", res.Output)

	// 3. The pure sequential machine's cycle count (memory and control
	//    operations cost 2 cycles, everything else 1).
	seq, err := prog.SeqCycles()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential machine: %d cycles\n", seq)

	// 4. Trace-schedule onto a 3-unit VLIW and simulate.
	sched, err := prog.Schedule(symbol.DefaultMachine(3), symbol.ScheduleOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := sched.Simulate()
	if err != nil {
		log.Fatal(err)
	}
	if sim.Output != res.Output {
		log.Fatal("compacted code produced a different answer!")
	}
	fmt.Printf("3-unit VLIW:        %d cycles  (speed-up %.2f)\n",
		sim.Cycles, symbol.Speedup(seq, sim.Cycles))
	fmt.Printf("average compaction unit: %.1f operations\n", sched.AvgTraceLen())
}
