// N-queens — a backtracking-search workload. This example sweeps the
// number of VLIW units and shows the speed-up saturating at 3-4 units, the
// paper's central Table 3 / Figure 6 result: with a shared memory the
// memory operations become the bottleneck and Amdahl's law caps the
// achievable instruction-level parallelism at about 3.
package main

import (
	"fmt"
	"log"
	"strings"

	"symbol"
)

const src = `
main :- queens(6, Qs), write(Qs), nl.
queens(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).
place([], Qs, Qs).
place(Unplaced, Safe, Qs) :-
    selectq(Q, Unplaced, Rest),
    \+ attack(Q, Safe),
    place(Rest, [Q|Safe], Qs).
attack(X, Xs) :- attack3(X, 1, Xs).
attack3(X, N, [Y|_]) :- X =:= Y+N.
attack3(X, N, [Y|_]) :- X =:= Y-N.
attack3(X, N, [_|Ys]) :- N1 is N+1, attack3(X, N1, Ys).
selectq(X, [X|T], T).
selectq(X, [H|T], [H|R]) :- selectq(X, T, R).
range(N, N, [N]) :- !.
range(M, N, [M|Ns]) :- M < N, M1 is M+1, range(M1, N, Ns).
`

func main() {
	prog, err := symbol.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first solution: %s", res.Output)

	seq, err := prog.SeqCycles()
	if err != nil {
		log.Fatal(err)
	}
	a, err := prog.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory operations: %.1f%% → Amdahl asymptote %.2f\n\n",
		100*a.Mix.Memory, a.AmdahlLimit)

	fmt.Printf("%-8s %10s %8s\n", "units", "cycles", "speedup")
	for _, u := range []int{1, 2, 3, 4, 5, 8} {
		sched, err := prog.Schedule(symbol.DefaultMachine(u), symbol.ScheduleOptions{})
		if err != nil {
			log.Fatal(err)
		}
		sim, err := sched.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		if sim.Output != res.Output {
			log.Fatal("compacted run diverged")
		}
		su := symbol.Speedup(seq, sim.Cycles)
		bar := strings.Repeat("*", int(su/a.AmdahlLimit*50+0.5))
		fmt.Printf("%-8d %10d %8.2f %s\n", u, sim.Cycles, su, bar)
	}
	fmt.Println("\n(the bar scale tops out at the Amdahl asymptote)")
}
